"""The superblock: persisted soft write pointers and extent ownership.

Every time ShardStore appends to an extent it must eventually update that
extent's *soft write pointer* in the superblock (section 2.1), because after
a crash the recovered pointer -- not the medium -- decides how much of the
extent is readable.  Pointer updates are batched: one superblock flush
covers all appends since the previous flush, which is why the puts in the
paper's Fig. 2 share superblock-update nodes in their dependency graphs.

Key crash-consistency rules implemented here (and the faults that break
them):

* An append's persistence promise is a per-extent :class:`FutureCell`,
  resolved only by a flush whose published pointer actually **covers** the
  append.  Fault #8 bypasses the promise entirely (the paper's buffer-cache
  write missing its soft-pointer dependency).
* When an extent has a pending (not-yet-durable) **reset**, flushes keep
  publishing the last pointer consistent with the durable medium instead of
  the in-memory post-reset pointer.  Publishing early is fault #7: a crash
  then recovers a zero pointer while live, already-persistent chunks are
  still on the medium, losing them.
* On reboot the pointer-update promises must start fresh; reusing the
  pre-reboot flush promise is fault #6 (operations after the reboot report
  persistent against a stale superblock record).

The superblock is itself stored as CRC'd records appended alternately to a
pair of reserved extents; recovery takes the highest-epoch valid record.
A bounded *buffer pool* gates concurrent flushes; fault #12 inverts its
lock order against the state mutex, the deadlock the paper's issue #12
describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.concurrency.primitives import Condvar, Mutex, yield_point
from repro.serialization.codec import (
    Preencoded,
    encode_record,
    encode_value,
    scan_records,
)

from .config import SUPERBLOCK_EXTENTS, StoreConfig
from .dependency import Dependency, DurabilityTracker, FutureCell
from .faults import Fault
from .scheduler import IoScheduler

#: Extent owners recorded in the superblock.
OWNER_FREE = "free"
OWNER_DATA = "data"


@dataclass
class SuperblockState:
    """The durable content of one superblock record."""

    epoch: int = 0
    pointers: Dict[int, int] = field(default_factory=dict)
    ownership: Dict[int, str] = field(default_factory=dict)

    def to_value(self) -> dict:
        # Extent numbers are encoded as ints directly (the codec supports
        # int dict keys); ``from_value`` accepts both int and legacy str
        # keys, so records from either encoding recover identically.
        return {
            "epoch": self.epoch,
            "pointers": dict(self.pointers),
            "ownership": dict(self.ownership),
        }

    @classmethod
    def from_value(cls, value: object) -> Optional["SuperblockState"]:
        if not isinstance(value, dict):
            return None
        try:
            epoch = value["epoch"]
            pointers = {int(k): int(v) for k, v in value["pointers"].items()}
            ownership = {int(k): str(v) for k, v in value["ownership"].items()}
        except (KeyError, TypeError, ValueError, AttributeError):
            return None
        if not isinstance(epoch, int):
            return None
        return cls(epoch=epoch, pointers=pointers, ownership=ownership)


class BufferPool:
    """A bounded pool of flush buffers (the paper's issue #12 substrate)."""

    def __init__(self, capacity: int = 1) -> None:
        self._capacity = capacity
        self._in_use = 0
        self._lock = Mutex(None, name="buffer-pool")
        self._available = Condvar(name="buffer-available")

    def acquire(self) -> None:
        while True:
            with self._lock:
                if self._in_use < self._capacity:
                    self._in_use += 1
                    return
            self._available.wait_until(self._has_capacity)

    def _has_capacity(self) -> bool:
        return self._in_use < self._capacity

    def release(self) -> None:
        with self._lock:
            self._in_use -= 1
        self._available.notify_all()


class Superblock:
    """In-memory superblock state plus its flush/recovery protocol."""

    def __init__(
        self,
        scheduler: IoScheduler,
        config: StoreConfig,
        *,
        recovered: Optional[SuperblockState] = None,
        recovered_dep: Optional[Dependency] = None,
        recovered_slot: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.tracker: DurabilityTracker = scheduler.tracker
        self.config = config
        self.faults = config.faults
        self.recorder = config.recorder
        state = recovered or SuperblockState(
            ownership={e: OWNER_FREE for e in config.data_extents}
        )
        self._epoch = state.epoch
        #: Last pointer value published in a durable-consistent record.
        self._published: Dict[int, int] = dict(state.pointers)
        self._ownership: Dict[int, str] = dict(state.ownership)
        #: Which superblock extent the next record goes to.  Recovery must
        #: resume on the slot holding the newest valid record: rotation
        #: resets the *other* slot, which is only crash-safe while the
        #: other slot holds strictly older epochs.
        self._slot = recovered_slot
        #: Per-extent promise cells for pointer-update persistence.  A cell
        #: covers one *era* of an extent -- the appends between two resets.
        self._cells: Dict[int, FutureCell] = {}
        #: Soft pointer at the era's most recent append (coverage target).
        self._era_end: Dict[int, int] = {}
        #: Resets whose publication is gated on the reset being durable.
        self._pending_resets: Dict[int, List[Dependency]] = {}
        self._appends_since_flush = 0
        #: Cached canonical encoding of the ownership map.  Ownership only
        #: changes on extent allocation/release, so flushes (every few
        #: appends) splice the cached bytes instead of re-encoding the map.
        self._ownership_blob: Optional[Preencoded] = None
        self._last_flush_dep: Dependency = recovered_dep or Dependency.root(
            self.tracker
        )
        self.pool = BufferPool(capacity=1)
        self._state_lock = Mutex(None, name="superblock-state")
        if self.faults.enabled(Fault.SUPERBLOCK_WRONG_DEP_AFTER_REBOOT) and recovered:
            # Fault #6: after a reboot, the flush promise for every extent is
            # pre-resolved against the *recovered* (pre-reboot) superblock
            # record, so post-reboot operations report persistent before any
            # post-reboot superblock record is durable.
            for extent in self.config.data_extents:
                cell = FutureCell(label=f"sb-ptr@{extent} (stale)")
                cell.resolve(self._last_flush_dep)
                self._cells[extent] = cell
            if self.recorder.enabled:
                self.recorder.fault_event(
                    Fault.SUPERBLOCK_WRONG_DEP_AFTER_REBOOT,
                    "Superblock",
                    "pointer promises pre-resolved against the pre-reboot "
                    "flush record",
                )

    # ------------------------------------------------------------------
    # notes from the write path

    def note_append(self, extent: int) -> Dependency:
        """An append advanced ``extent``'s soft pointer; returns the
        dependency that becomes persistent once the append is *covered* --
        either by a superblock record whose published pointer reaches it,
        or (for appends in an era closed by an extent reset) by the reset
        record itself, whose own dependency guarantees the data was
        evacuated and re-indexed first."""
        self._appends_since_flush += 1
        cell = self._cells.get(extent)
        if cell is None or (
            cell.resolved is not None
            and not self.faults.enabled(Fault.SUPERBLOCK_WRONG_DEP_AFTER_REBOOT)
        ):
            cell = FutureCell(label=f"sb-ptr@{extent}")
            self._cells[extent] = cell
        self._era_end[extent] = self.scheduler.soft_pointer(extent)
        return Dependency.on_future(self.tracker, cell)

    def note_reset(self, extent: int, reset_dep: Dependency) -> None:
        """An extent reset was queued.

        Closes the extent's promise era: the era's cell resolves to the
        reset record (reclamation's reset dependency already orders every
        evacuation write and index update before it, so "reset durable"
        implies every key that lived here is readable elsewhere).  Pointer
        publication for the extent is gated on the reset being durable.
        """
        cell = self._cells.pop(extent, None)
        self._era_end.pop(extent, None)
        if cell is not None and cell.resolved is None:
            cell.resolve(reset_dep)
        if self.faults.enabled(Fault.SOFT_HARD_POINTER_MISMATCH_ON_RESET):
            # Fault #7: publish the post-reset pointer immediately, with no
            # regard for whether the reset (and the evacuations it depends
            # on) is durable.
            if self.recorder.enabled:
                self.recorder.fault_event(
                    Fault.SOFT_HARD_POINTER_MISMATCH_ON_RESET,
                    "Superblock",
                    f"pointer for extent {extent} published as 0 before the "
                    "reset is durable",
                )
            self._published[extent] = 0
            return
        self._pending_resets.setdefault(extent, []).append(reset_dep)

    def note_ownership(self, extent: int, owner: str) -> Dependency:
        """Record an ownership change; persisted by the next flush."""
        self._ownership[extent] = owner
        self._ownership_blob = None
        return self.note_append(extent)

    def ownership(self) -> Dict[int, str]:
        return dict(self._ownership)

    def owner_of(self, extent: int) -> str:
        return self._ownership.get(extent, OWNER_FREE)

    @property
    def appends_since_flush(self) -> int:
        return self._appends_since_flush

    # ------------------------------------------------------------------
    # flushing

    def maybe_flush(self) -> Optional[Dependency]:
        """Flush if the cadence says so (called from the write path)."""
        if self._appends_since_flush >= self.config.superblock_flush_cadence:
            return self.flush()
        return None

    def flush(self) -> Dependency:
        """Write one superblock record; resolves covered pointer promises.

        Lock order is pool -> state.  Fault #12 inverts it (state -> pool),
        which deadlocks when another flusher holds the last buffer and
        waits for the state lock.
        """
        if self.faults.enabled(Fault.BUFFER_POOL_DEADLOCK):
            if self.recorder.enabled:
                self.recorder.fault_event(
                    Fault.BUFFER_POOL_DEADLOCK,
                    "Superblock",
                    "flush acquiring state lock before the buffer pool",
                )
            with self._state_lock:
                self.pool.acquire()
                try:
                    return self._flush_locked()
                finally:
                    self.pool.release()
        self.pool.acquire()
        try:
            with self._state_lock:
                return self._flush_locked()
        finally:
            self.pool.release()

    def current_epoch(self) -> int:
        """The epoch of the most recent flush (reads under the state lock)."""
        with self._state_lock:
            return self._epoch

    def with_buffer(self, fn):
        """Run ``fn`` while holding one of the pool's flush buffers.

        This is the client side of the paper's issue #12: threads that hold
        a buffer while waiting on superblock state form one half of the
        lock cycle when a faulty flush acquires state before buffer.
        """
        self.pool.acquire()
        try:
            return fn()
        finally:
            self.pool.release()

    def _flush_locked(self) -> Dependency:
        self._epoch += 1
        pointers: Dict[int, int] = {}
        for extent in self.config.data_extents:
            soft = self.scheduler.soft_pointer(extent)
            pending = self._pending_resets.get(extent)
            if pending is not None:
                pending = [d for d in pending if not d.is_persistent()]
                if pending:
                    self._pending_resets[extent] = pending
                    # Hold back: publish the last durable-consistent value.
                    # (Recovery takes min(published, hard pointer), so a
                    # stale-high value can never expose garbage.)
                    pointers[extent] = self._published.get(extent, 0)
                    continue
                del self._pending_resets[extent]
            pointers[extent] = soft
        # Encode the record straight from the live dicts (guarded by the
        # state lock; the encoder never mutates).  Same layout as
        # ``SuperblockState.to_value`` -- int extent keys; the ownership
        # subtree is spliced from a cache invalidated by ``note_ownership``.
        ownership_blob = self._ownership_blob
        if ownership_blob is None:
            ownership_blob = self._ownership_blob = Preencoded(
                encode_value(self._ownership)
            )
        value = {
            "epoch": self._epoch,
            "pointers": pointers,
            "ownership": ownership_blob,
        }
        record = encode_record(value, self.config.geometry.page_size)
        dep = self._append_record(record)
        for extent, published in pointers.items():
            # A published pointer covers the current era iff it reaches the
            # era's last append; min(published, hard) at recovery then
            # includes the append whenever its data is durable.
            if published >= self._era_end.get(extent, 0):
                cell = self._cells.pop(extent, None)
                if cell is not None and cell.resolved is None:
                    cell.resolve(dep)
            self._published[extent] = published
        self._appends_since_flush = 0
        self._last_flush_dep = dep
        if self.recorder.enabled:
            self.recorder.count("superblock.flushes")
        yield_point("superblock flushed")
        return dep

    def _append_record(self, record: bytes) -> Dependency:
        extent = SUPERBLOCK_EXTENTS[self._slot]
        if self.scheduler.free_bytes(extent) < len(record):
            # Switch slots: reset the other extent (it holds only records
            # with strictly older epochs, so this is always crash-safe) and
            # continue the log there.
            self._slot = 1 - self._slot
            extent = SUPERBLOCK_EXTENTS[self._slot]
            self.scheduler.reset(
                extent, Dependency.root(self.tracker), label="superblock-rotate"
            )
        _, dep = self.scheduler.append(
            extent, record, Dependency.root(self.tracker), label="superblock-record"
        )
        return dep

    # ------------------------------------------------------------------
    # recovery

    @staticmethod
    def recover_state(
        scheduler: IoScheduler, config: StoreConfig
    ) -> Tuple[SuperblockState, int]:
        """Scan both superblock extents; adopt the highest-epoch record.

        Superblock (and metadata) extents are scanned up to the medium's
        hard write pointer -- the write-pointer query a zoned device offers
        -- with CRC validation rejecting torn tails.  Returns the state and
        the slot index it was found on, which the new superblock must
        resume writing to.
        """
        best: Optional[SuperblockState] = None
        best_slot = 0
        for slot, extent in enumerate(SUPERBLOCK_EXTENTS):
            hard = scheduler.disk.write_pointer(extent)
            if not hard:
                continue
            data = scheduler.disk.read(extent, 0, hard)
            for _, value in scan_records(data, config.geometry.page_size):
                state = SuperblockState.from_value(value)
                if state and (best is None or state.epoch > best.epoch):
                    best = state
                    best_slot = slot
        if best is None:
            best = SuperblockState(
                ownership={e: OWNER_FREE for e in config.data_extents}
            )
        return best, best_slot

    @staticmethod
    def recovered_pointer(
        state: SuperblockState, scheduler: IoScheduler, extent: int, page_size: int
    ) -> int:
        """The post-crash readable bound for a data extent.

        The published soft pointer can run ahead of the medium (pointer
        updates never wait for data), so recovery takes the minimum of the
        published pointer and the device's hard pointer -- then rounds up
        to a page boundary.  The rounding keeps post-crash appends
        page-aligned: reclamation's scan probes page boundaries and
        decoded-chunk ends, so a chunk written at an unaligned recovered
        pointer after a torn predecessor would be unreachable (and later
        destroyed).  This is also exactly the paper's bug #10 setting,
        where the post-crash chunk starts at the page boundary.
        """
        published = state.pointers.get(extent, 0)
        hard = scheduler.disk.write_pointer(extent)
        recovered = min(published, hard)
        rounded = -(-recovered // page_size) * page_size
        return min(rounded, scheduler.disk.geometry.extent_size)
