"""Write-through page cache over the IO scheduler.

All chunk reads and data-extent appends go through this cache.  It is the
home of two Fig. 5 issues:

* **Fault #2** -- the cache must be drained when an extent is reset, or a
  later reuse of the extent can serve stale pages to readers.
* **Fault #8** -- the append path must combine the data-write dependency
  with the superblock soft-pointer-update promise; dropping the promise
  lets an operation report persistent while a crash would recover a write
  pointer that excludes its data.

The cache also triggers the superblock's regular-cadence flush, since it is
the single append path for chunk data (section 2.1's "superblock flushed on
a regular cadence").
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

from .config import StoreConfig
from .dependency import Dependency
from .errors import ExtentError, IoError
from .faults import Fault
from .scheduler import IoScheduler
from .superblock import Superblock


class BufferCache:
    """LRU page cache; write-through on append, demand-fill on read."""

    def __init__(
        self, scheduler: IoScheduler, superblock: Superblock, config: StoreConfig
    ) -> None:
        self.scheduler = scheduler
        self.superblock = superblock
        self.config = config
        self.faults = config.faults
        self.recorder = config.recorder
        self._page_size = config.geometry.page_size
        # (extent, page index) -> (page bytes so far, valid length)
        self._pages: "OrderedDict[Tuple[int, int], Tuple[bytes, int]]" = OrderedDict()
        # Size-aware eviction: when ``buffer_cache_bytes`` is configured the
        # cache evicts by resident bytes (partial pages cost what they hold),
        # otherwise by page count as before.
        self._byte_budget = config.buffer_cache_bytes
        self._page_budget = config.buffer_cache_pages
        self._bytes_used = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # read path

    def read(self, extent: int, offset: int, length: int) -> bytes:
        """Read ``length`` bytes below the soft pointer, page-cached."""
        if length < 0 or offset < 0:
            raise ExtentError("negative read bounds")
        soft = self.scheduler.soft_pointer(extent)
        if offset + length > soft:
            raise ExtentError(
                f"read beyond soft write pointer on extent {extent}: "
                f"[{offset}, {offset + length}) > {soft}"
            )
        page = self._page_size
        end = offset + length
        first_page = offset // page
        if end <= (first_page + 1) * page:
            # Single-page fast path: serve a slice straight off the page.
            page_start = first_page * page
            data = self._page(extent, first_page, end - page_start)
            return data[offset - page_start : end - page_start]
        out = bytearray()
        cursor = offset
        while cursor < end:
            page_idx = cursor // page
            page_start = page_idx * page
            in_page_end = min(end, page_start + page) - page_start
            data = self._page(extent, page_idx, in_page_end)
            out += data[cursor - page_start : in_page_end]
            cursor = page_start + page
        return bytes(out)

    def _page(self, extent: int, page_idx: int, need: int) -> bytes:
        """The cached page, refetched if the cached prefix is too short."""
        key = (extent, page_idx)
        cached = self._pages.get(key)
        if cached is not None and cached[1] >= need:
            self._pages.move_to_end(key)
            self.hits += 1
            if self.recorder.enabled:
                self.recorder.count("cache.hits")
            return cached[0]
        self.misses += 1
        if self.recorder.enabled:
            self.recorder.count("cache.misses")
        page_start = page_idx * self._page_size
        soft = self.scheduler.soft_pointer(extent)
        valid = min(self._page_size, soft - page_start)
        if self.recorder.timing:
            with self.recorder.timed("cache.fill"):
                data = self.scheduler.read(extent, page_start, valid)
        else:
            data = self.scheduler.read(extent, page_start, valid)
        self._insert(key, data, valid)
        return data

    def _insert(self, key: Tuple[int, int], data: bytes, valid: int) -> None:
        pages = self._pages
        old = pages.get(key)
        if old is not None:
            self._bytes_used -= len(old[0])
        self._bytes_used += len(data)
        pages[key] = (data, valid)
        pages.move_to_end(key)
        if self._byte_budget is not None:
            while self._bytes_used > self._byte_budget and len(pages) > 1:
                _, (evicted, _) = pages.popitem(last=False)
                self._bytes_used -= len(evicted)
        else:
            while len(pages) > self._page_budget:
                _, (evicted, _) = pages.popitem(last=False)
                self._bytes_used -= len(evicted)

    # ------------------------------------------------------------------
    # write path

    def append(
        self, extent: int, data: bytes, dep: Dependency, label: str = ""
    ) -> Tuple[int, Dependency]:
        """Append through the cache; returns (offset, persistence dep).

        The returned dependency is ``data-write AND superblock-promise``;
        fault #8 drops the superblock promise.
        """
        offset, data_dep = self.scheduler.append(extent, data, dep, label=label)
        self._fill_from_append(extent, offset, data)
        pointer_dep = self.superblock.note_append(extent)
        self.superblock.maybe_flush()
        if self.faults.enabled(Fault.CACHE_WRITE_MISSING_SOFT_PTR_DEP):
            if self.recorder.enabled:
                self.recorder.fault_event(
                    Fault.CACHE_WRITE_MISSING_SOFT_PTR_DEP,
                    "Buffer cache",
                    f"append@{extent} returned without the soft-pointer promise",
                )
            return offset, data_dep
        return offset, data_dep.and_(pointer_dep)

    def _fill_from_append(self, extent: int, offset: int, data: bytes) -> None:
        """Populate cache pages covering a fresh append (write-through).

        An append can start mid-page; the bytes before it belong to earlier
        appends and must come from the cache or, if the page was never
        cached that far, from the scheduler -- fabricating anything for the
        prefix would corrupt the cached image of the previous chunk's tail.
        """
        page = self._page_size
        end = offset + len(data)
        view = memoryview(data)
        for page_idx in range(offset // page, (end - 1) // page + 1):
            page_start = page_idx * page
            valid = min(page, end - page_start)
            key = (extent, page_idx)
            cached = self._pages.get(key)
            if cached is not None and cached[1] > valid:
                continue  # cache already knows a longer prefix
            lo = max(offset, page_start)
            prefix_len = lo - page_start
            known = cached[1] if cached is not None else 0
            seg = view[lo - offset : min(end, page_start + page) - offset]
            if known == prefix_len:
                # Fast path: the cached prefix (possibly empty) ends exactly
                # where this append starts -- concatenate, no readback and no
                # scratch buffer.
                if prefix_len:
                    self._insert(key, cached[0] + bytes(seg), valid)
                else:
                    self._insert(key, bytes(seg), valid)
                continue
            fresh = bytearray(valid)
            if cached is not None:
                fresh[:known] = cached[0][:known]
            if known < prefix_len:
                # Earlier appends own [known, prefix_len); read them back.
                try:
                    fresh[known:prefix_len] = self.scheduler.read(
                        extent, page_start + known, prefix_len - known
                    )
                except IoError:
                    # Injected read fault: don't cache a page we cannot
                    # reconstruct; the read path will refetch it later.
                    self._discard(key)
                    continue
            fresh[prefix_len:valid] = seg
            self._insert(key, bytes(fresh), valid)

    # ------------------------------------------------------------------
    # invalidation

    def invalidate_extent(self, extent: int) -> None:
        """Drop every cached page of ``extent`` (called on extent reset).

        Fault #2 skips the drain, leaving stale pages that a later reuse of
        the extent can serve to readers.
        """
        if self.faults.enabled(Fault.CACHE_NOT_DRAINED_ON_RESET):
            if self.recorder.enabled:
                self.recorder.fault_event(
                    Fault.CACHE_NOT_DRAINED_ON_RESET,
                    "Buffer cache",
                    f"reset of extent {extent} left cached pages in place",
                )
            return
        stale = [key for key in self._pages if key[0] == extent]
        for key in stale:
            self._discard(key)
        if self.recorder.enabled:
            self.recorder.count("cache.invalidated_pages", len(stale))

    def invalidate_all(self) -> None:
        self._pages.clear()
        self._bytes_used = 0

    def _discard(self, key: Tuple[int, int]) -> None:
        old = self._pages.pop(key, None)
        if old is not None:
            self._bytes_used -= len(old[0])

    @property
    def cached_pages(self) -> int:
        return len(self._pages)

    @property
    def cached_bytes(self) -> int:
        """Resident payload bytes (what size-aware eviction budgets against)."""
        return self._bytes_used
