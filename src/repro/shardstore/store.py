"""The ShardStore key-value store: one disk, one store (section 2.1).

:class:`ShardStore` wires the substrate together -- disk, IO scheduler,
superblock, buffer cache, chunk store, LSM index, reclaimer -- and exposes
the key-value API the rest of S3 sees: ``put``/``get``/``delete`` plus the
background operations (index flush, superblock flush, compaction, chunk
reclamation) that the validation alphabets include as no-op-in-the-model
operations (Fig. 3).

Every mutating operation returns a :class:`Dependency` that can be polled
with ``is_persistent()`` -- the observable the crash-consistency checker's
two properties (persistence, forward progress; section 5) are stated over.

:class:`StoreSystem` owns what survives a reboot (the disk and the
durability tracker) and rebuilds the store object through recovery, giving
the checkers their ``DirtyReboot(RebootType)`` and clean-reboot operations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Set, TypeVar

from .buffer_cache import BufferCache
from .chunk_store import ChunkStore
from .config import StoreConfig
from .dependency import Dependency, DurabilityTracker
from .disk import InMemoryDisk
from .errors import (
    MAX_KEY_LEN,
    CorruptionError,
    IoError,
    KeyNotFoundError,
    NotFoundError,
    ShardStoreError,
    validate_key,
)
from .faults import component_of
from .lsm import LsmIndex
from .merkle import MerkleMap
from .observability.journal import digest_bytes, digest_keys
from .reclamation import Reclaimer, ReclaimResult
from .scheduler import IoScheduler
from .scrub import MerkleScrubReport, RepairReport, Scrubber
from .superblock import Superblock

_T = TypeVar("_T")

__all__ = ["ShardStore", "StoreSystem", "RebootType", "MAX_KEY_LEN"]


class ShardStore:
    """A single-disk key-value store over append-only extents."""

    #: Ordered names of the recovery steps a ``recovery_hook`` observes.
    RECOVERY_STEPS = ("seal", "superblock", "pointers", "index")

    def __init__(
        self,
        disk: InMemoryDisk,
        tracker: DurabilityTracker,
        config: StoreConfig,
        *,
        rng: Optional[random.Random] = None,
        recover: bool = False,
        recovery_hook: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.disk = disk
        self.tracker = tracker
        self.config = config
        self.recorder = config.recorder
        self.journal = config.journal
        self.rng = rng or random.Random(config.seed)
        # The hook fires immediately before each RECOVERY_STEPS stage; a
        # raising hook models a crash *during* recovery, so re-entrant
        # recovery tests can interrupt at every step boundary and prove
        # that recovering again from the partial state still converges.
        hook = recovery_hook or (lambda step: None)
        self.scheduler = IoScheduler(
            disk,
            tracker,
            random.Random(self.rng.getrandbits(32)),
            recorder=config.recorder,
            batch_pages=config.io_batch_pages,
        )
        if recover:
            hook("seal")
            self._seal_log_extents()
            hook("superblock")
            state, slot = Superblock.recover_state(self.scheduler, config)
            hook("pointers")
            for extent in config.data_extents:
                pointer = Superblock.recovered_pointer(
                    state, self.scheduler, extent, config.geometry.page_size
                )
                self.scheduler.sync_soft_pointer(extent, pointer)
            self.superblock = Superblock(
                self.scheduler, config, recovered=state, recovered_slot=slot
            )
        else:
            self.superblock = Superblock(self.scheduler, config)
        self.cache = BufferCache(self.scheduler, self.superblock, config)
        self.chunk_store = ChunkStore(self.cache, self.superblock, config, self.rng)
        if recover:
            hook("index")
            self.index, self.lost_runs = LsmIndex.recover(
                self.chunk_store, self.scheduler, config
            )
        else:
            self.index = LsmIndex(self.chunk_store, self.scheduler, config)
            self.lost_runs: List[int] = []
        self.reclaimer = Reclaimer(
            self.chunk_store, self.index, self.cache, self.superblock, config
        )
        self.scrubber = Scrubber(self.chunk_store, self.index)
        self.chunk_store.on_out_of_space = self._reclaim_for_space
        self.retry_count = 0
        self.quarantined: Set[bytes] = set()
        # Write-time content-addressed commitment (ROADMAP 5a): fresh
        # stores track key -> value digest incrementally at put/delete; a
        # recovered store re-derives it lazily from the recovered state on
        # first Merkle use (the crash may have lost un-drained writes, so
        # the pre-crash in-memory commitment would over-claim).
        self._merkle: Optional[MerkleMap] = None if recover else MerkleMap()
        if self.recorder.enabled and config.faults:
            # Record which Fig. 5 faults this store was built with, so every
            # traced fault-matrix shard carries a non-empty fault-event
            # section even when the fault's trigger site is never reached.
            for fault in config.faults:
                self.recorder.fault_event(
                    fault, component_of(fault), "armed at store construction"
                )

    def _seal_log_extents(self) -> None:
        """Truncate superblock/metadata log extents to their valid prefix.

        A crash can tear a multi-page record, leaving undecodable garbage
        below the hard pointer.  Appending new records after the garbage
        would strand them: future recovery scans stop at the tear and never
        see anything beyond it.  Sealing restores the invariant that a log
        extent is always a contiguous run of valid records plus at most a
        torn tail.
        """
        from repro.serialization.codec import scan_records_with_end

        from .config import METADATA_EXTENTS, SUPERBLOCK_EXTENTS

        page = self.config.geometry.page_size
        for extent in (*SUPERBLOCK_EXTENTS, *METADATA_EXTENTS):
            hard = self.disk.write_pointer(extent)
            if not hard:
                continue
            data = self.disk.read(extent, 0, hard)
            _, end = scan_records_with_end(data, page)
            if end < hard:
                self.scheduler.sync_soft_pointer(extent, end)

    def _reclaim_for_space(self) -> bool:
        """GC under allocation pressure: reclaim every eligible extent.

        Refuses to run while the index lock is held: the caller is then an
        LSM-internal write (flush/compaction), and reclamation re-enters the
        index -- a reentrancy deadlock.  Those writes have allocation
        priority and the free-extent reserve instead.
        """
        if self.index.busy():
            return False
        progress = False
        for extent in self.reclaimer.reclaimable_extents():
            result = self.reclaimer.reclaim(extent)
            if result is not None and result.reset_done:
                progress = True
        return progress

    # ------------------------------------------------------------------
    # request plane

    def _retrying(self, fn: Callable[[], _T]) -> _T:
        """Run a request-plane operation under the configured retry policy.

        Only transient :class:`IoError`\\ s are retried; the default
        (``retry_policy=None``) is the historical fail-fast behaviour.
        """
        policy = self.config.retry_policy
        if policy is None or not policy.enabled:
            return fn()
        return policy.call(fn, on_retry=self._note_retry)

    def _note_retry(self, failures: int, backoff: int, exc: IoError) -> None:
        self.retry_count += 1
        if self.journal is not None:
            self.journal.note_retry()
        if self.recorder.enabled:
            self.recorder.count("store.retries")
            self.recorder.event(
                "store.retry", attempt=failures, backoff=backoff, error=str(exc)
            )

    def put(self, key: bytes, value: bytes) -> Dependency:
        """Store ``value`` under ``key``; returns its durability dependency."""
        validate_key(key)
        if self.journal is not None:
            return self.journal.call(
                "put", lambda: self._put_op(key, value), key=key, value=value
            )
        return self._put_op(key, value)

    def _put_op(self, key: bytes, value: bytes) -> Dependency:
        if not self.recorder.enabled:
            return self._retrying(lambda: self._put_validated(key, value))
        with self.recorder.span("put", key=repr(key), size=len(value)):
            return self._retrying(lambda: self._put_validated(key, value))

    def _put_validated(self, key: bytes, value: bytes) -> Dependency:
        locators, data_dep = self.chunk_store.put_shard(key, value)
        dep = self.index.put(key, locators, data_dep)
        if self._merkle is not None:
            self._merkle.set(key, digest_bytes(value))
        return dep

    def get(self, key: bytes) -> bytes:
        """The value stored under ``key``.

        Raises :class:`NotFoundError` for absent keys and
        :class:`CorruptionError` when the stored bytes fail validation.
        """
        validate_key(key)
        if self.journal is not None:
            return self.journal.call(
                "get",
                lambda: self._get_op(key),
                key=key,
                classify=lambda value: {"value": digest_bytes(value)},
            )
        return self._get_op(key)

    def _get_op(self, key: bytes) -> bytes:
        if not self.recorder.enabled:
            return self._retrying(lambda: self._get_validated(key))
        with self.recorder.span("get", key=repr(key)):
            return self._retrying(lambda: self._get_validated(key))

    def _get_validated(self, key: bytes) -> bytes:
        locators = self.index.get(key)
        if locators is None:
            raise NotFoundError(f"no shard for key {key!r}")
        return self.chunk_store.get_shard(key, locators)

    def delete(self, key: bytes) -> Dependency:
        """Remove ``key``; returns the tombstone's durability dependency.

        Raises :class:`KeyNotFoundError` when ``key`` is not present -- the
        uniform ``KVNode`` contract, so callers never branch on an Optional.
        """
        validate_key(key)
        if self.journal is not None:
            return self.journal.call(
                "delete", lambda: self._delete_op(key), key=key
            )
        return self._delete_op(key)

    def _delete_op(self, key: bytes) -> Dependency:
        if not self.recorder.enabled:
            return self._retrying(lambda: self._delete_validated(key))
        with self.recorder.span("delete", key=repr(key)):
            return self._retrying(lambda: self._delete_validated(key))

    def _delete_validated(self, key: bytes) -> Dependency:
        if self.index.get(key) is None:
            raise KeyNotFoundError(f"no shard for key {key!r}")
        dep = self.index.delete(key)
        if self._merkle is not None:
            self._merkle.remove(key)
        return dep

    def contains(self, key: bytes) -> bool:
        validate_key(key)
        if self.journal is not None:
            return self.journal.call(
                "contains",
                lambda: self.index.get(key) is not None,
                key=key,
                classify=lambda present: {"result": bool(present)},
            )
        return self.index.get(key) is not None

    def keys(self) -> List[bytes]:
        if self.journal is not None:
            return self.journal.call(
                "keys",
                self.index.keys,
                classify=lambda ks: {"n": len(ks), "keys_digest": digest_keys(ks)},
            )
        return self.index.keys()

    # ------------------------------------------------------------------
    # background operations (no-ops in the reference model)

    def flush(self) -> Dependency:
        """Flush index and superblock; the combined durability dependency.

        The ``KVNode``-level durability knob: after ``flush()`` plus
        ``drain()``, every dependency previously returned by this store
        reports persistent.
        """
        if self.journal is not None:
            return self.journal.call("flush", self._flush_op)
        return self._flush_op()

    def _flush_op(self) -> Dependency:
        if not self.recorder.enabled:
            return self._flush()
        with self.recorder.span("flush"):
            return self._flush()

    def _flush(self) -> Dependency:
        index_dep = self.flush_index()
        superblock_dep = self.flush_superblock()
        return index_dep.and_(superblock_dep)

    def flush_index(self) -> Dependency:
        return self.index.flush()

    def flush_superblock(self) -> Dependency:
        return self.superblock.flush()

    def compact(self) -> Optional[Dependency]:
        if self.recorder.timing:
            with self.recorder.timed("lsm.compact"):
                return self.index.compact()
        return self.index.compact()

    def reclaim(
        self, extent: int, *, max_evacuations: Optional[int] = None
    ) -> Optional[ReclaimResult]:
        return self.reclaimer.reclaim(extent, max_evacuations=max_evacuations)

    def reclaimable_extents(self) -> List[int]:
        return self.reclaimer.reclaimable_extents()

    def scrub(self):
        """Proactively validate every live chunk (no state changes)."""
        with self.recorder.span("scrub"):
            return self.scrubber.scrub()

    @property
    def merkle_tree(self) -> MerkleMap:
        """The store's content-addressed commitment (key -> value digest).

        Maintained incrementally at write time; after a recovery it is
        re-derived here on first use from the recovered state (unreadable
        keys are omitted, so surviving corruption still diverges from the
        actual tree and gets caught by the next :meth:`merkle_scrub`).
        """
        if self._merkle is None:
            tree = MerkleMap()
            for key in self.index.keys():
                locators = self.index.get(key)
                if locators is None:
                    continue
                try:
                    value = self.chunk_store.get_shard(key, locators)
                except ShardStoreError:
                    continue
                tree.set(key, digest_bytes(value))
            self._merkle = tree
        return self._merkle

    def merkle_scrub(self) -> MerkleScrubReport:
        """Prove store integrity by Merkle root comparison (no repair).

        Every live value is re-read and content-addressed; the resulting
        root must equal the write-time commitment's root.  Equal roots
        prove the whole store intact in one comparison -- the
        content-addressed upgrade of :meth:`scrub`'s per-chunk sampling.
        """
        if self.journal is not None:
            return self.journal.call(
                "merkle_scrub",
                self._merkle_scrub_op,
                classify=lambda report: {
                    "proven": report.proven,
                    "root": report.actual_root,
                    "diverging": len(report.diverging) or None,
                },
            )
        return self._merkle_scrub_op()

    def _merkle_scrub_op(self) -> MerkleScrubReport:
        with self.recorder.span("merkle_scrub"):
            return self.scrubber.merkle_scrub(self.merkle_tree)

    def scrub_repair(self, *, merkle: bool = False) -> RepairReport:
        """Scrub, then heal what the scrub found (section 4.4 tolerance).

        Keys whose chunks fail validation are re-read through the normal
        path -- the buffer cache or a surviving chunk may still hold good
        bytes -- and rewritten to fresh chunks (*repair*).  Unrecoverable
        keys are removed from the index and remembered in
        :attr:`quarantined`, converting silent corruption into a typed
        :class:`NotFoundError` (*quarantine*).  Corrupt LSM run chunks are
        rewritten by forcing a compaction.  Transient IO errors propagate:
        repairing a disk that is still failing is the circuit breaker's
        decision, not the scrubber's.

        With ``merkle=True`` the damage is found by the Merkle proof
        instead of chunk sampling: the pre-repair divergence pins the
        keys to heal, and a post-repair proof (``report.proven``)
        certifies the store intact again -- or names what quarantine had
        to give up on.
        """
        if self.journal is not None:
            return self.journal.call(
                "scrub_repair",
                lambda: self._scrub_repair_op(merkle=merkle),
                classify=lambda report: {
                    "repaired": sorted(digest_bytes(k) for k in report.repaired)
                    or None,
                    "quarantined": sorted(
                        digest_bytes(k) for k in report.quarantined
                    )
                    or None,
                    "proven": (
                        report.proven if report.merkle is not None else None
                    ),
                },
            )
        return self._scrub_repair_op(merkle=merkle)

    def _heal_keys(self, bad_keys: List[bytes], report: RepairReport) -> None:
        """Heal-or-quarantine each suspect key (shared by both modes)."""
        for key in bad_keys:
            try:
                value = self.get(key)
            except CorruptionError:
                try:
                    self.index.delete(key)
                except KeyNotFoundError:
                    pass
                if self._merkle is not None:
                    self._merkle.remove(key)
                self.quarantined.add(key)
                report.quarantined.append(key)
                if self.recorder.enabled:
                    self.recorder.count("scrub.quarantined")
                    self.recorder.event("scrub.quarantine", key=repr(key))
                continue
            except NotFoundError:
                # Deleted since the scrub pass: nothing to heal, but the
                # commitment must not keep claiming a key the index lost.
                if self._merkle is not None:
                    self._merkle.remove(key)
                continue
            self.put(key, value)
            report.repaired.append(key)
            if self.recorder.enabled:
                self.recorder.count("scrub.repaired")
                self.recorder.event("scrub.repair", key=repr(key))

    def _scrub_repair_op(self, *, merkle: bool = False) -> RepairReport:
        with self.recorder.span("scrub_repair"):
            if merkle:
                before = self.scrubber.merkle_scrub(self.merkle_tree)
                report = RepairReport(merkle=before)
                self._heal_keys(list(before.diverging), report)
                report.merkle_after = self.scrubber.merkle_scrub(
                    self.merkle_tree
                )
                return report
            report = RepairReport(scanned=self.scrubber.scrub())
            self._heal_keys(report.scanned.bad_keys, report)
            if report.scanned.bad_runs:
                try:
                    self.compact()
                    report.run_compactions += 1
                    if self.recorder.enabled:
                        self.recorder.count("scrub.run_compactions")
                except ShardStoreError:
                    pass  # the corrupt run is unreadable even for compaction
            return report

    # ------------------------------------------------------------------
    # writeback control (the crash checker drives these)

    def pump(self, n: int) -> int:
        return self.scheduler.pump(n)

    def drain(self) -> None:
        """Write back everything pending, flushing the superblock as needed.

        Pending records can wait on pointer-update promises that only a
        superblock flush resolves, so drain alternates pumping with flushes
        (the same fixpoint clean shutdown uses).  Writebacks are issued
        through the group-commit path -- contiguous records coalesce into
        batched device IOs (``io_batch_pages`` window).  Raises
        :class:`~repro.shardstore.errors.IoError` if records remain
        genuinely stuck -- a forward-progress violation.
        """
        if self.journal is not None:
            return self.journal.call("drain", self._drain_op)
        return self._drain_op()

    def _drain_op(self) -> None:
        for _ in range(self.config.geometry.num_extents + 2):
            while self.scheduler.pump_one(coalesce=True):
                pass
            if self.scheduler.pending_count == 0:
                return
            self.superblock.flush()
        self.scheduler.drain()  # raises, listing the stuck records

    @property
    def pending_io_count(self) -> int:
        return self.scheduler.pending_count

    def clean_shutdown(self) -> None:
        """Flush everything and drain; afterwards every dependency returned
        by this store's operations must report persistent (the section 5
        forward-progress property).

        Superblock flush and writeback alternate to a fixpoint: each flush
        publishes pointers for extents whose resets became durable in the
        previous round (resolving their promise cells), which can make
        further records eligible.  Chained reclamations need one round per
        link, so the bound is the extent count; exceeding it means a
        genuinely unsatisfiable dependency, surfaced via :meth:`drain`.
        """
        self.index.shutdown_flush()
        for _ in range(self.config.geometry.num_extents + 2):
            self.superblock.flush()
            while self.scheduler.pump_one(coalesce=True):
                pass
            if self.scheduler.pending_count == 0:
                break
        else:
            self.scheduler.drain()  # raises with the stuck records
        # One final flush+pump publishes any pointers that were held back
        # until the last round's resets persisted.
        self.superblock.flush()
        self.scheduler.flush_coalesced()


@dataclass
class RebootType:
    """Which volatile state a dirty reboot persists first (section 5).

    ``pump`` selects how many pending writebacks reach the medium before
    the crash: None drains everything eligible, an int pumps exactly that
    many (in the scheduler's seeded order).
    """

    flush_index: bool = False
    flush_superblock: bool = False
    pump: Optional[int] = None


RebootType.NONE = RebootType()


class StoreSystem:
    """The durable identity of one store across reboots and crashes."""

    def __init__(self, config: Optional[StoreConfig] = None) -> None:
        self.config = config or StoreConfig()
        self.disk = InMemoryDisk(self.config.geometry, recorder=self.config.recorder)
        self.tracker = DurabilityTracker()
        self.generation = 0
        self.store = ShardStore(self.disk, self.tracker, self.config)

    def _reboot_rng(self) -> random.Random:
        self.generation += 1
        return random.Random((self.config.seed << 16) ^ self.generation)

    def _journaled(
        self, mode: str, fn: Callable[[], ShardStore]
    ) -> ShardStore:
        """Run one reboot under the evidence journal (if configured).

        Reboots are durability events the trace-conformance checker keys
        crash semantics off: ``clean`` is a full durability barrier, while
        ``dirty``/``recover`` (or any reboot that errored) widen each
        mutated key's possible post-crash states.
        """
        journal = self.config.journal
        if journal is None:
            return fn()
        return journal.call("reboot", fn, fields={"mode": mode})

    def clean_reboot(
        self, recovery_hook: Optional[Callable[[str], None]] = None
    ) -> ShardStore:
        """Shut down cleanly and recover; returns the new store object."""
        return self._journaled(
            "clean", lambda: self._clean_reboot(recovery_hook)
        )

    def _clean_reboot(
        self, recovery_hook: Optional[Callable[[str], None]] = None
    ) -> ShardStore:
        self.store.clean_shutdown()
        self.store = ShardStore(
            self.disk,
            self.tracker,
            self.config,
            rng=self._reboot_rng(),
            recover=True,
            recovery_hook=recovery_hook,
        )
        return self.store

    def dirty_reboot(
        self,
        reboot: RebootType = RebootType.NONE,
        recovery_hook: Optional[Callable[[str], None]] = None,
    ) -> ShardStore:
        """Crash and recover.

        Component flushes selected by ``reboot`` run first (they only queue
        IO); then up to ``reboot.pump`` pending writebacks reach the medium;
        everything else pending is lost.
        """
        return self._journaled(
            "dirty", lambda: self._dirty_reboot(reboot, recovery_hook)
        )

    def _dirty_reboot(
        self,
        reboot: RebootType = RebootType.NONE,
        recovery_hook: Optional[Callable[[str], None]] = None,
    ) -> ShardStore:
        if reboot.flush_index:
            self.store.flush_index()
        if reboot.flush_superblock:
            self.store.flush_superblock()
        if reboot.pump is None:
            # Drain everything *eligible*; unlike clean shutdown, records
            # with unsatisfiable dependencies are simply lost in the crash.
            while self.store.scheduler.pump_one():
                pass
        else:
            self.store.pump(reboot.pump)
        self.store.scheduler.drop_pending()
        self.store = ShardStore(
            self.disk,
            self.tracker,
            self.config,
            rng=self._reboot_rng(),
            recover=True,
            recovery_hook=recovery_hook,
        )
        return self.store

    def recover_again(
        self, recovery_hook: Optional[Callable[[str], None]] = None
    ) -> ShardStore:
        """Re-run crash recovery from the current durable state.

        Models a crash *during* a previous recovery: nothing is flushed or
        pumped -- the disk is taken exactly as the interrupted recovery
        left it.  Recovery must be idempotent under this (the paper's
        "recovery is just another crash point" obligation).
        """
        return self._journaled(
            "recover", lambda: self._recover_again(recovery_hook)
        )

    def _recover_again(
        self, recovery_hook: Optional[Callable[[str], None]] = None
    ) -> ShardStore:
        self.store = ShardStore(
            self.disk,
            self.tracker,
            self.config,
            rng=self._reboot_rng(),
            recover=True,
            recovery_hook=recovery_hook,
        )
        return self.store
