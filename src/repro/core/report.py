"""Issue catalog rendering: regenerating the paper's Fig. 5 and Fig. 6.

Fig. 5 is the paper's headline result -- the 16 issues its validation
stack prevented from reaching production, grouped by top-level property.
Our reproduction re-injects each issue via
:class:`repro.shardstore.faults.Fault` and demonstrates that the matching
checker detects it; :func:`detection_matrix` renders the outcome as the
Fig. 5 table plus a Detected column.

Fig. 6 is the artifact-size table (implementation vs models vs checks);
:func:`loc_table` measures this repository the same way.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.shardstore.faults import FAULT_CATALOG, Fault, detector_for

_PROPERTY_ORDER = ["Functional Correctness", "Crash Consistency", "Concurrency"]


@dataclass
class DetectionOutcome:
    """What happened when one Fig. 5 fault was re-injected and hunted."""

    fault: Fault
    detected: bool
    detector: str
    evidence: str = ""  # the failing check's message / schedule summary
    sequences_or_executions: int = 0


def detection_matrix(outcomes: Iterable[DetectionOutcome]) -> str:
    """Render the Fig. 5 table with detection results."""
    by_fault = {outcome.fault: outcome for outcome in outcomes}
    lines: List[str] = []
    header = f"{'ID':<4} {'Component':<14} {'Detector':<26} {'Detected':<9} Description"
    lines.append(header)
    lines.append("-" * len(header))
    for prop in _PROPERTY_ORDER:
        lines.append(f"-- {prop} --")
        for fault in Fault:
            meta = FAULT_CATALOG[fault]
            if meta["property"] != prop:
                continue
            outcome = by_fault.get(fault)
            detected = "-" if outcome is None else ("yes" if outcome.detected else "NO")
            detector = detector_for(fault)
            lines.append(
                f"#{fault.value:<3} {meta['component']:<14} {detector:<26} "
                f"{detected:<9} {meta['description']}"
            )
    total = sum(1 for o in by_fault.values() if o.detected)
    lines.append("-" * len(header))
    lines.append(f"detected: {total}/{len(by_fault)} injected issues")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# campaign artifacts (repro campaign --output)


def outcomes_from_campaign(artifact: Dict) -> List[DetectionOutcome]:
    """Rebuild Fig. 5 :class:`DetectionOutcome` rows from a campaign
    artifact's ``fault_matrix`` section (see EXPERIMENTS.md for the
    schema).  This is how ``repro fig5 --from-artifact`` reproduces the
    paper's headline table from CI output alone."""
    outcomes = []
    for row in artifact.get("fault_matrix", []):
        outcomes.append(
            DetectionOutcome(
                fault=Fault[row["fault"]],
                detected=bool(row["detected"]),
                detector=row.get("detector", ""),
                evidence=row.get("evidence", ""),
                sequences_or_executions=int(row.get("cases", 0)),
            )
        )
    return outcomes


def campaign_summary(artifact: Dict) -> str:
    """Human-readable digest of a campaign artifact (CLI output)."""
    campaign = artifact.get("campaign", {})
    totals = artifact.get("totals", {})
    timing = artifact.get("timing", {})
    lines: List[str] = []
    lines.append(
        f"campaign profile={campaign.get('profile')} "
        f"base_seed={campaign.get('base_seed')} "
        f"workers={campaign.get('workers')} "
        f"shards={campaign.get('shard_count')}"
    )
    header = f"{'phase':<14} {'shards':>6} {'cases':>9} {'ops':>9} {'failures':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    for kind, phase in artifact.get("phases", {}).items():
        lines.append(
            f"{kind:<14} {phase['shards']:>6} {phase['cases']:>9,} "
            f"{phase['ops']:>9,} {phase['failures']:>8}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'total':<14} {campaign.get('shard_count', 0):>6} "
        f"{totals.get('cases', 0):>9,} {totals.get('ops', 0):>9,} "
        f"{totals.get('failures', 0):>8}"
    )
    detected = totals.get("faults_detected", 0)
    matrix_size = len(artifact.get("fault_matrix", []))
    if matrix_size:
        lines.append(
            f"fault matrix: {detected}/{matrix_size} injected issues detected"
        )
        for fault_name in artifact.get("missed_faults", []):
            lines.append(f"  MISSED: {fault_name}")
        for row in artifact.get("fault_matrix", []):
            if row.get("skipped"):
                lines.append(f"  SKIPPED (budget): {row['fault']}")
    coverage = artifact.get("coverage", {})
    if coverage.get("lines"):
        lines.append(
            f"coverage: {coverage['lines']} implementation lines across "
            f"{len(coverage.get('by_file', {}))} files"
        )
    metrics = artifact.get("metrics")
    if metrics:
        counters = metrics.get("counters", {})
        fault_event_count = int(counters.get("faults.events", 0))
        lines.append(
            f"metrics: {len(counters)} counters, "
            f"{len(metrics.get('histograms', {}))} histograms, "
            f"{fault_event_count} fault events "
            "(inspect with `repro stats --from-artifact`)"
        )
    for failure in artifact.get("failures", []):
        lines.append(
            f"FAILURE shard={failure.get('shard_id')} "
            f"seed={failure.get('seed')}: {failure.get('detail')}"
        )
        for op in failure.get("minimized") or []:
            lines.append(f"    {op}")
    skipped = totals.get("shards_skipped", 0)
    if skipped:
        lines.append(f"budget exhausted: {skipped} shard(s) skipped")
    if timing:
        lines.append(
            f"wall clock {timing.get('wall_clock_seconds')}s, "
            f"{timing.get('cases_per_second')} cases/sec"
        )
    lines.append("PASS" if artifact.get("passed") else "FAIL")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Fig. 6: lines of code per artifact category


#: Maps this repository's files onto the paper's Fig. 6 rows.
FIG6_CATEGORIES: Dict[str, Tuple[str, ...]] = {
    "Implementation": ("src/repro/shardstore", "src/repro/serialization/codec.py"),
    "Unit tests & integration tests": ("tests",),
    "Reference models (S3.2)": ("src/repro/models",),
    "Functional correctness checks (S3)": (
        "src/repro/core/alphabet.py",
        "src/repro/core/conformance.py",
        "src/repro/core/generate.py",
        "src/repro/core/minimize.py",
        "src/repro/core/coverage.py",
        "src/repro/core/report.py",
    ),
    "Crash consistency checks (S5)": ("src/repro/core/crash_checker.py",),
    "Concurrency checks (S6)": (
        "src/repro/concurrency",
        "src/repro/core/linearizability.py",
    ),
    "Serialization checks (S7)": ("src/repro/serialization/fuzz.py",),
    "Benchmarks (evaluation harness)": ("benchmarks",),
}


def count_lines(path: str) -> int:
    """Non-blank lines of Python in a file or directory tree."""
    total = 0
    if os.path.isfile(path):
        candidates = [path]
    else:
        candidates = []
        for root, _, files in os.walk(path):
            candidates.extend(
                os.path.join(root, f) for f in files if f.endswith(".py")
            )
    for filename in candidates:
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                total += sum(1 for line in handle if line.strip())
        except OSError:
            continue
    return total


def loc_table(repo_root: str) -> str:
    """Render this repository's Fig. 6 analogue."""
    rows: List[Tuple[str, int]] = []
    for category, paths in FIG6_CATEGORIES.items():
        count = sum(count_lines(os.path.join(repo_root, p)) for p in paths)
        rows.append((category, count))
    total = sum(count for _, count in rows)
    impl = dict(rows).get("Implementation", 1)
    validation = sum(
        count
        for category, count in rows
        if "checks" in category or "models" in category.lower()
    )
    lines = [f"{'Component':<44} Lines", "-" * 52]
    for category, count in rows:
        lines.append(f"{category:<44} {count:>6,}")
    lines.append("-" * 52)
    lines.append(f"{'Total':<44} {total:>6,}")
    lines.append("")
    lines.append(
        f"validation artifacts are {validation / max(total, 1):.0%} of the "
        f"code base and {validation / max(impl, 1):.0%} of the implementation "
        "(paper: 13% and 20%; formal verification efforts report 3-10x)"
    )
    return "\n".join(lines)
