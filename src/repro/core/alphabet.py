"""Operation alphabets with argument biasing (sections 4.1-4.2).

A property-based conformance test is parameterised by an *alphabet* of
operations: the component's API calls plus background operations that are
no-ops in the reference model (Fig. 3).  Each test run draws a random
sequence from the alphabet and applies it to both model and implementation.

Two design rules from the paper are encoded here:

* **Ordering for minimization** (section 4.3): shrinkers prefer earlier
  variants, so alphabets list operations in increasing order of complexity
  -- ``Get`` before ``Put`` before crashes and failure injection.

* **Argument bias** (section 4.2): naive random keys for ``Get`` and
  ``Put`` would rarely coincide, so key selection prefers keys that were
  put earlier; value sizes are biased toward page-size boundaries ("in our
  experience frequent causes of bugs").  Biases are probabilistic only --
  unbiased choices always remain possible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple


@dataclass(frozen=True)
class Operation:
    """One operation in a generated sequence: a name and plain-data args."""

    name: str
    args: Tuple = ()

    def __str__(self) -> str:
        rendered = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({rendered})"


@dataclass
class GenContext:
    """Mutable generation context threaded through argument generators.

    Tracks the keys already used so later operations can be biased toward
    them (the successful-``Get``-path bias of section 4.2).
    """

    rng: random.Random
    page_size: int = 128
    num_data_extents: int = 8
    first_data_extent: int = 4
    num_disks: int = 1
    keys_seen: List[bytes] = field(default_factory=list)

    def note_key(self, key: bytes) -> None:
        if key not in self.keys_seen:
            self.keys_seen.append(key)


@dataclass(frozen=True)
class BiasConfig:
    """Probabilities for the section 4.2 argument biases (0 disables)."""

    reuse_key: float = 0.7  # prefer a previously used key
    page_boundary_size: float = 0.35  # prefer sizes near page multiples
    key_space: int = 16  # fresh keys are drawn from k0..k{n-1}
    max_value_len: int = 600

    @classmethod
    def unbiased(cls) -> "BiasConfig":
        """The naive strategy of section 4.2: keys drawn uniformly from a
        large space (so gets and puts rarely coincide), sizes uniform."""
        return cls(reuse_key=0.0, page_boundary_size=0.0, key_space=1 << 16)


def gen_key(ctx: GenContext, bias: BiasConfig) -> bytes:
    """A shard key, biased toward keys already used in this sequence."""
    if ctx.keys_seen and ctx.rng.random() < bias.reuse_key:
        return ctx.rng.choice(ctx.keys_seen)
    key = b"k%d" % ctx.rng.randrange(bias.key_space)
    return key


def gen_value_len(ctx: GenContext, bias: BiasConfig) -> int:
    """A value size, biased toward page-size boundaries (section 4.2)."""
    if ctx.rng.random() < bias.page_boundary_size:
        multiple = ctx.rng.randrange(1, 4) * ctx.page_size
        return max(0, multiple + ctx.rng.randrange(-2, 3))
    return ctx.rng.randrange(0, bias.max_value_len)


def gen_value(ctx: GenContext, bias: BiasConfig) -> bytes:
    length = gen_value_len(ctx, bias)
    return bytes(ctx.rng.getrandbits(8) for _ in range(length))


def gen_extent(ctx: GenContext) -> int:
    return ctx.first_data_extent + ctx.rng.randrange(ctx.num_data_extents)


@dataclass(frozen=True)
class OpSpec:
    """One alphabet entry: a name, a weight, and an argument generator."""

    name: str
    weight: float
    gen_args: Callable[[GenContext, BiasConfig], Tuple]


class Alphabet:
    """An ordered, weighted set of operation specs."""

    def __init__(self, specs: Sequence[OpSpec]) -> None:
        if not specs:
            raise ValueError("empty alphabet")
        self.specs = list(specs)
        self._by_name = {spec.name: spec for spec in self.specs}
        if len(self._by_name) != len(self.specs):
            raise ValueError("duplicate operation names in alphabet")

    def names(self) -> List[str]:
        return [spec.name for spec in self.specs]

    def variant_rank(self, name: str) -> int:
        """Position in the alphabet; shrinking prefers lower ranks."""
        for rank, spec in enumerate(self.specs):
            if spec.name == name:
                return rank
        raise KeyError(name)

    def generate_op(self, ctx: GenContext, bias: BiasConfig) -> Operation:
        total = sum(spec.weight for spec in self.specs)
        point = ctx.rng.random() * total
        acc = 0.0
        chosen = self.specs[-1]
        for spec in self.specs:
            acc += spec.weight
            if point < acc:
                chosen = spec
                break
        op = Operation(chosen.name, chosen.gen_args(ctx, bias))
        if op.name in ("Put", "Get", "Delete") and op.args:
            ctx.note_key(op.args[0])
        return op

    def generate_sequence(
        self, rng: random.Random, length: int, bias: BiasConfig, **ctx_kwargs
    ) -> List[Operation]:
        ctx = GenContext(rng=rng, **ctx_kwargs)
        return [self.generate_op(ctx, bias) for _ in range(length)]


# ----------------------------------------------------------------------
# concrete alphabets (ordered by increasing complexity, section 4.3)

def _no_args(ctx: GenContext, bias: BiasConfig) -> Tuple:
    return ()


def _key_args(ctx: GenContext, bias: BiasConfig) -> Tuple:
    return (gen_key(ctx, bias),)


def _put_args(ctx: GenContext, bias: BiasConfig) -> Tuple:
    return (gen_key(ctx, bias), gen_value(ctx, bias))


def _extent_args(ctx: GenContext, bias: BiasConfig) -> Tuple:
    return (gen_extent(ctx),)


def _pump_args(ctx: GenContext, bias: BiasConfig) -> Tuple:
    return (ctx.rng.randrange(1, 24),)


def store_alphabet() -> Alphabet:
    """The Fig. 3 alphabet for the single-store conformance test."""
    return Alphabet(
        [
            OpSpec("Get", 3.0, _key_args),
            OpSpec("Put", 3.0, _put_args),
            OpSpec("Delete", 1.0, _key_args),
            OpSpec("FlushIndex", 0.6, _no_args),
            OpSpec("FlushSuperblock", 0.6, _no_args),
            OpSpec("Compact", 0.4, _no_args),
            OpSpec("Reclaim", 0.8, _extent_args),
            OpSpec("PumpIo", 0.8, _pump_args),
            OpSpec("Scrub", 0.3, _no_args),
            OpSpec("Reboot", 0.3, _no_args),
        ]
    )


def _dirty_reboot_args(ctx: GenContext, bias: BiasConfig) -> Tuple:
    flush_index = ctx.rng.random() < 0.4
    flush_superblock = ctx.rng.random() < 0.4
    pump = ctx.rng.choice([0, 1, 4, 16, None])
    return (flush_index, flush_superblock, pump)


def _partial_reclaim_args(ctx: GenContext, bias: BiasConfig) -> Tuple:
    return (gen_extent(ctx), ctx.rng.randrange(1, 4))


def crash_alphabet() -> Alphabet:
    """The section 5 alphabet: store ops + component flushes + DirtyReboot.

    ``PartialReclaim`` interrupts garbage collection mid-pass, so a
    following ``DirtyReboot`` lands in a crash-during-reclamation state --
    the setting of the paper's issue #9.
    """
    base = store_alphabet()
    return Alphabet(
        base.specs
        + [
            OpSpec("PartialReclaim", 0.4, _partial_reclaim_args),
            OpSpec("DirtyReboot", 0.9, _dirty_reboot_args),
        ]
    )


def _fail_extent_args(ctx: GenContext, bias: BiasConfig) -> Tuple:
    return (gen_extent(ctx),)


def failure_alphabet() -> Alphabet:
    """The section 4.4 alphabet: store ops + IO failure injection."""
    base = store_alphabet()
    return Alphabet(
        base.specs
        + [
            OpSpec("FailDiskOnce", 0.5, _fail_extent_args),
            OpSpec("ClearFaults", 0.3, _no_args),
        ]
    )


def _disk_args(ctx: GenContext, bias: BiasConfig) -> Tuple:
    return (ctx.rng.randrange(ctx.num_disks),)


def _bulk_args(ctx: GenContext, bias: BiasConfig) -> Tuple:
    count = ctx.rng.randrange(1, 5)
    keys = tuple(gen_key(ctx, bias) for _ in range(count))
    for key in keys:
        ctx.note_key(key)
    return (keys,)


def _bulk_create_args(ctx: GenContext, bias: BiasConfig) -> Tuple:
    (keys,) = _bulk_args(ctx, bias)
    return (tuple((key, gen_value(ctx, bias)) for key in keys),)


def _migrate_args(ctx: GenContext, bias: BiasConfig) -> Tuple:
    return (gen_key(ctx, bias), ctx.rng.randrange(ctx.num_disks))


def node_alphabet() -> Alphabet:
    """The storage-node (RPC/control-plane) alphabet: section 2.1's API."""
    return Alphabet(
        [
            OpSpec("Get", 3.0, _key_args),
            OpSpec("Put", 3.0, _put_args),
            OpSpec("Delete", 1.0, _key_args),
            OpSpec("ListShards", 0.8, _no_args),
            OpSpec("BulkCreate", 0.5, _bulk_create_args),
            OpSpec("BulkDelete", 0.5, _bulk_args),
            OpSpec("MigrateShard", 0.5, _migrate_args),
            OpSpec("RemoveDisk", 0.5, _disk_args),
            OpSpec("ReturnDisk", 0.5, _disk_args),
        ]
    )
