"""Bounded verification of the reference models themselves (section 3.2).

The paper notes that the reference models' simplicity makes it possible to
verify properties *of the models* to increase confidence in their
sufficiency -- e.g. "prove that the LSM-tree reference model removes a
key-value mapping if and only if it receives a delete operation for that
key" -- and reports early experiments doing so with the Prusti verifier.

Python has no auto-active verifier, but the models are small enough for
**bounded-exhaustive verification**: enumerate *every* operation sequence
up to a depth bound over a small argument universe, and check a temporal
property at each step.  Within the bound this is a proof, the same
role Crux's bounded symbolic evaluation plays for the deserializers in
section 7.  (Small-scope hypothesis: model bugs like the paper's #15
manifest at tiny scopes -- locator reuse needs one put, one delete, one
put.)

Properties are predicates over ``(model, history)`` where ``history`` is
the exact sequence of operations applied so far.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core.alphabet import Operation

ModelFactory = Callable[[], object]
ApplyFn = Callable[[object, Operation], None]
PropertyFn = Callable[[object, Sequence[Operation]], Optional[str]]


@dataclass
class VerifyResult:
    """Outcome of a bounded-exhaustive model verification."""

    sequences_checked: int = 0
    max_depth: int = 0
    counterexample: Optional[List[Operation]] = None
    message: Optional[str] = None

    @property
    def verified(self) -> bool:
        return self.counterexample is None


def verify_model(
    model_factory: ModelFactory,
    operations: Sequence[Operation],
    properties: Sequence[Tuple[str, PropertyFn]],
    *,
    depth: int = 4,
    apply_fn: Optional[ApplyFn] = None,
    max_sequences: int = 2_000_000,
) -> VerifyResult:
    """Check ``properties`` on every operation sequence up to ``depth``.

    ``operations`` is the closed argument universe (every op is a concrete
    ``Operation`` with concrete arguments).  The default ``apply_fn``
    dispatches ``op.name`` as a method call on the model.

    Sequences are re-executed from scratch per prefix (models are tiny);
    the search is depth-first over the |operations|^depth tree.
    """
    apply_fn = apply_fn or _apply_by_name
    result = VerifyResult(max_depth=depth)

    def check(history: List[Operation]) -> Optional[str]:
        model = model_factory()
        for op in history:
            apply_fn(model, op)
        for name, prop in properties:
            message = prop(model, history)
            if message is not None:
                return f"{name}: {message}"
        return None

    def dfs(history: List[Operation]) -> bool:
        result.sequences_checked += 1
        if result.sequences_checked > max_sequences:
            raise RuntimeError("model verification exceeded sequence budget")
        message = check(history)
        if message is not None:
            result.counterexample = list(history)
            result.message = message
            return False
        if len(history) == depth:
            return True
        for op in operations:
            history.append(op)
            ok = dfs(history)
            history.pop()
            if not ok:
                return False
        return True

    dfs([])
    return result


def _apply_by_name(model: object, op: Operation) -> None:
    getattr(model, _snake(op.name))(*op.args)


def _snake(name: str) -> str:
    out = []
    for index, char in enumerate(name):
        if char.isupper() and index > 0:
            out.append("_")
        out.append(char.lower())
    return "".join(out)


# ----------------------------------------------------------------------
# the paper's example properties, for the shipped models


def kv_universe(keys: Iterable[bytes] = (b"a", b"b"), values: Iterable[bytes] = (b"1", b"2")):
    """A small closed operation universe for the KV reference model."""
    ops: List[Operation] = []
    for key in keys:
        for value in values:
            ops.append(Operation("Put", (key, value)))
        ops.append(Operation("Delete", (key,)))
    ops.append(Operation("Compact", ()))
    ops.append(Operation("CleanReboot", ()))
    return ops


def removed_iff_deleted(model, history: Sequence[Operation]) -> Optional[str]:
    """The paper's example: a mapping is absent iff the last mutating
    operation on its key was a delete (or it was never put)."""
    last: dict = {}
    for op in history:
        if op.name == "Put":
            last[op.args[0]] = op.args[1]
        elif op.name == "Delete":
            last[op.args[0]] = None
    for key, expected in last.items():
        present = model.contains(key)
        if expected is None and present:
            return f"{key!r} present after delete"
        if expected is not None:
            if not present:
                return f"{key!r} absent after put"
            if model.get(key) != expected:
                return f"{key!r} maps to wrong value"
    return None


def background_ops_are_noops(model, history: Sequence[Operation]) -> Optional[str]:
    """Background operations never change the mapping (Fig. 3's premise)."""
    from repro.models import ReferenceKvStore

    if not isinstance(model, ReferenceKvStore):
        return None
    before = model.mapping()
    model.compact()
    model.flush_index()
    model.reclaim(0)
    model.clean_reboot()
    model.scrub()
    if model.mapping() != before:
        return "a background op changed the mapping"
    return None


def _apply_kv(model: object, op: Operation) -> None:
    """KV-model dispatch honouring the KVNode delete contract.

    Delete of an absent key raises :class:`KeyNotFoundError` by contract
    and leaves the mapping unchanged, so within the closed universe it is
    a legal (no-op) step, not a verification failure.
    """
    from repro.errors import KeyNotFoundError

    try:
        _apply_by_name(model, op)
    except KeyNotFoundError:
        if op.name != "Delete":
            raise


def verify_kv_model(depth: int = 4) -> VerifyResult:
    """Bounded-exhaustively verify the shipped KV reference model."""
    from repro.models import ReferenceKvStore

    return verify_model(
        ReferenceKvStore,
        kv_universe(),
        [
            ("removed-iff-deleted", removed_iff_deleted),
            ("background-noops", background_ops_are_noops),
        ],
        depth=depth,
        apply_fn=_apply_kv,
    )


def chunkstore_universe() -> List[Operation]:
    return [
        Operation("Put", (b"x",)),
        Operation("Put", (b"y",)),
        Operation("DeleteOldest", ()),
        Operation("Reclaim", ()),
    ]


def locators_never_reused(model, history: Sequence[Operation]) -> Optional[str]:
    if not model.locators_unique():
        return "a locator was issued twice"
    return None


class _ChunkStoreDriver:
    """Adapts the chunk-store model to the closed universe above."""

    def __init__(self, faults=None) -> None:
        from repro.models import ReferenceChunkStore

        self.model = ReferenceChunkStore(faults)
        self.live: List = []

    def put(self, data: bytes) -> None:
        self.live.append(self.model.put(data))

    def delete_oldest(self) -> None:
        if self.live:
            self.model.delete(self.live.pop(0))

    def reclaim(self) -> None:
        self.model.reclaim()

    def locators_unique(self) -> bool:
        return self.model.locators_unique()


def verify_chunkstore_model(depth: int = 5, faults=None) -> VerifyResult:
    """The verification that would have caught the paper's issue #15:
    within depth 5 the buggy model provably reuses a locator."""
    return verify_model(
        lambda: _ChunkStoreDriver(faults),
        chunkstore_universe(),
        [("locator-uniqueness", locators_never_reused)],
        depth=depth,
    )
