"""Conformance checking: implementation vs reference model (section 4).

The engine applies a generated operation sequence to both the ShardStore
implementation and its reference model, compares results operation by
operation, and checks cross-invariants (same key-value mapping) after each
step -- Fig. 3's ``proptest_index`` pattern generalised over alphabets.

Three harness flavours mirror the paper's property decomposition
(section 3.1):

* :class:`StoreHarness` -- sequential executions of one store.  In plain
  mode (no crash ops) the equivalence check is strict.  ``DirtyReboot``
  operations (section 5) trigger the crash-consistency checks: the
  *persistence* property via :class:`~repro.models.crash.CrashAwareModel`
  and, on clean ``Reboot``, the *forward-progress* property.  Failure
  injection ops (section 4.4) flip the harness into relaxed "has failed"
  equivalence: operations may fail with no data, but may never return
  wrong data.
* :class:`NodeHarness` -- the multi-disk RPC/control-plane API against the
  plain dict model.
* :class:`ChunkStoreModelHarness` -- exercises the *reference model* of the
  chunk store against its own invariants (locator uniqueness), which is how
  the paper's issue #15 (a bug in the model itself) is caught.

Everything is deterministic: the system under test is seeded from the
harness seed and all randomness in generated arguments lives in the
operation sequence itself, so a failing sequence replays and minimizes
(section 4.3).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:
    from repro.campaign.spec import ShardResult, ShardSpec

from repro.models.chunkstore import ReferenceChunkStore
from repro.models.crash import CrashAwareModel
from repro.models.kvstore import ReferenceKvStore
from repro.shardstore.config import StoreConfig
from repro.shardstore.dependency import Dependency
from repro.shardstore.disk import DiskGeometry, FailureMode
from repro.shardstore.errors import (
    CorruptionError,
    ExtentError,
    InvalidRequestError,
    IoError,
    KeyNotFoundError,
    NotFoundError,
    RetryableError,
    ShardStoreError,
)
from repro.shardstore.faults import FaultSet
from repro.shardstore.observability import NULL_RECORDER, Recorder
from repro.shardstore.resilience import BreakerConfig, RetryPolicy
from repro.shardstore.rpc import StorageNode
from repro.shardstore.store import RebootType, StoreSystem

from .alphabet import Alphabet, BiasConfig, Operation


@dataclass
class CheckFailure:
    """A conformance violation: which operation, and what went wrong."""

    op_index: int
    op: Operation
    message: str

    def __str__(self) -> str:
        return f"op[{self.op_index}] {self.op}: {self.message}"


class Harness:
    """Interface every conformance harness implements."""

    def apply(self, index: int, op: Operation) -> Optional[CheckFailure]:
        raise NotImplementedError

    def run(self, ops: Sequence[Operation]) -> Optional[CheckFailure]:
        for index, op in enumerate(ops):
            failure = self.apply(index, op)
            if failure is not None:
                return failure
        return None


def _small_test_config(
    faults: FaultSet,
    seed: int,
    uuid_magic_bias: float,
    recorder: Recorder = NULL_RECORDER,
) -> StoreConfig:
    """A store config sized so tests reach reclamation/rotation paths fast."""
    return StoreConfig(
        geometry=DiskGeometry(num_extents=12, extent_size=4096, page_size=128),
        faults=faults,
        seed=seed,
        uuid_magic_bias=uuid_magic_bias,
        recorder=recorder,
    )


class StoreHarness(Harness):
    """Single-store conformance with optional crash and failure checking."""

    def __init__(
        self,
        faults: Optional[FaultSet] = None,
        seed: int = 0,
        *,
        uuid_magic_bias: float = 0.0,
        config: Optional[StoreConfig] = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        self.faults = faults or FaultSet.none()
        self.system = StoreSystem(
            config
            or _small_test_config(self.faults, seed, uuid_magic_bias, recorder)
        )
        self.model = ReferenceKvStore()
        self.crash_model = CrashAwareModel(self.faults)
        self.has_failed = False
        #: Keys whose implementation state is uncertain after a failed op:
        #: maps key -> set of byte values it may hold (None in the set means
        #: "may be absent").
        self._uncertain: Dict[bytes, Set[Optional[bytes]]] = {}
        #: Forward progress is only owed to operations issued since the
        #: last dirty crash -- earlier ops may have been (legally) lost.
        self._crash_epoch_start = 0

    # ------------------------------------------------------------------

    @property
    def store(self):
        return self.system.store

    def apply(self, index: int, op: Operation) -> Optional[CheckFailure]:
        handler = getattr(self, f"_op_{op.name.lower()}", None)
        if handler is None:
            return CheckFailure(index, op, f"unknown operation {op.name}")
        if op.name in ("Get", "Put", "Delete") and op.args:
            failure = self._check_invalid_key(index, op)
            if failure is not None or not _valid_key(op.args[0]):
                return failure  # both sides rejected (or one wrongly didn't)
        try:
            message = handler(*op.args)
        except ShardStoreError as exc:
            return CheckFailure(index, op, f"unexpected {type(exc).__name__}: {exc}")
        if message is not None:
            return CheckFailure(index, op, message)
        return self._check_invariants(index, op)

    def _check_invalid_key(self, index: int, op: Operation) -> Optional[CheckFailure]:
        """Invalid keys (shrinkers produce them) must be rejected by both
        sides identically -- and are then not a conformance failure."""
        key = op.args[0]
        if _valid_key(key):
            return None
        try:
            self.store.get(key)
            impl_rejects = False
        except InvalidRequestError:
            impl_rejects = True
        except ShardStoreError:
            impl_rejects = False
        if not impl_rejects:
            return CheckFailure(
                index, op, f"implementation accepted invalid key {key!r}"
            )
        return None

    # ------------------------------------------------------------------
    # request-plane operations

    def _op_get(self, key: bytes) -> Optional[str]:
        model_value: Optional[bytes]
        try:
            model_value = self.model.get(key)
        except NotFoundError:
            model_value = None
        try:
            impl_value: Optional[bytes] = self.store.get(key)
            impl_error = None
        except (NotFoundError, CorruptionError, IoError, ExtentError) as exc:
            impl_value = None
            impl_error = exc
        allowed = self._allowed_values(key, model_value)
        if impl_error is not None:
            if isinstance(impl_error, NotFoundError) and None in allowed:
                return None
            if isinstance(impl_error, IoError):
                # An injected IO error may fail the read outright: "allowed
                # to fail by returning no data" (section 4.4).  The key's
                # state is untouched; later reads must still be right.
                return None
            if key in self._uncertain:
                return None  # this key's state is legitimately unknown
            return f"get failed but model has {_render(model_value)}: {impl_error}"
        if impl_value in allowed:
            if self.has_failed and impl_value is not None:
                # A successful read pins down the uncertain state.
                self._uncertain.pop(key, None)
            return None
        return (
            f"get returned wrong data: {_render(impl_value)} not in "
            f"allowed {{{', '.join(_render(v) for v in allowed)}}}"
        )

    def _allowed_values(self, key: bytes, model_value: Optional[bytes]) -> Set[Optional[bytes]]:
        allowed: Set[Optional[bytes]] = {model_value}
        if key in self._uncertain:
            allowed |= self._uncertain[key]
        return allowed

    def _op_put(self, key: bytes, value: bytes) -> Optional[str]:
        try:
            dep = self.store.put(key, value)
        except (IoError, ExtentError) as exc:
            # IO failure mid-put, or out of space.  The model is not updated
            # (the put did not happen as far as the caller knows), but the
            # implementation may have partially applied it.
            self.has_failed = True
            self._note_uncertain(key, value)
            return None
        self.model.put(key, value)
        self.crash_model.record_put(key, value, dep)
        if key in self._uncertain:
            del self._uncertain[key]
        return None

    def _op_delete(self, key: bytes) -> Optional[str]:
        try:
            dep = self.store.delete(key)
        except KeyNotFoundError:
            # The KVNode contract: deleting an absent key raises.  That is
            # conformant iff the model also lacks the key (or its state is
            # legitimately uncertain and may be absent); no tombstone was
            # written, so the crash model records nothing.
            if key in self._uncertain:
                if None not in self._uncertain[key]:
                    return (
                        "delete raised KeyNotFoundError for a key that "
                        "cannot be absent"
                    )
                self._uncertain.pop(key, None)
                if self.model.contains(key):
                    self.model.delete(key)
                return None
            if self.model.contains(key):
                return "delete raised KeyNotFoundError but the model has the key"
            return None
        except (IoError, ExtentError):
            self.has_failed = True
            self._note_uncertain(key, None)
            return None
        if self.model.contains(key):
            self.model.delete(key)
        elif key not in self._uncertain:
            return "delete succeeded but the model lacks the key"
        self.crash_model.record_delete(key, dep)
        if key in self._uncertain:
            del self._uncertain[key]
        return None

    def _note_uncertain(self, key: bytes, attempted: Optional[bytes]) -> None:
        entry = self._uncertain.setdefault(key, set())
        try:
            entry.add(self.model.get(key))
        except NotFoundError:
            entry.add(None)
        entry.add(attempted)

    # ------------------------------------------------------------------
    # background operations (no-ops in the model)

    def _op_flushindex(self) -> Optional[str]:
        return self._background(self.store.flush_index)

    def _op_flushsuperblock(self) -> Optional[str]:
        return self._background(self.store.flush_superblock)

    def _op_compact(self) -> Optional[str]:
        return self._background(self.store.compact)

    def _op_reclaim(self, extent: int) -> Optional[str]:
        return self._background(lambda: self.store.reclaim(extent))

    def _op_partialreclaim(self, extent: int, limit: int) -> Optional[str]:
        """An interrupted GC pass (preemption mid-reclamation)."""
        return self._background(
            lambda: self.store.reclaim(extent, max_evacuations=max(0, limit))
        )

    def _op_pumpio(self, n: int) -> Optional[str]:
        return self._background(lambda: self.store.pump(max(0, n)))

    def _op_scrub(self) -> Optional[str]:
        """Scrubbing must find no corruption on a healthy store."""
        try:
            report = self.store.scrub()
        except (IoError, ExtentError):
            self.has_failed = True
            return None
        if self.has_failed or self._uncertain:
            return None  # partially-applied writes may legitimately scan bad
        if not report.clean:
            key, message = report.errors[0]
            return f"scrub found corruption at {key}: {message}"
        return None

    def _background(self, fn: Callable[[], object]) -> Optional[str]:
        try:
            fn()
        except (IoError, ExtentError):
            # Injected IO failures abort background work; that is allowed.
            self.has_failed = True
        return None

    # ------------------------------------------------------------------
    # reboots (crash-consistency properties, section 5)

    def _op_reboot(self) -> Optional[str]:
        try:
            self.system.clean_reboot()
        except (IoError, ExtentError) as exc:
            if self.has_failed:
                return None
            return f"clean reboot failed (forward-progress violation): {exc}"
        if not self.has_failed:
            stuck = [
                op
                for op in self.crash_model.unpersisted_ops()
                if op.index >= self._crash_epoch_start
            ]
            if stuck:
                op = stuck[0]
                return (
                    "forward progress violated: dependency of op "
                    f"#{op.index} on key {op.key!r} is not persistent after "
                    "a clean shutdown"
                )
        return None

    def _op_dirtyreboot(
        self, flush_index: bool, flush_superblock: bool, pump: Optional[int]
    ) -> Optional[str]:
        touched = self.store.reclaimer.last_touched_keys
        try:
            self.system.dirty_reboot(
                RebootType(
                    flush_index=flush_index,
                    flush_superblock=flush_superblock,
                    pump=pump,
                )
            )
        except (IoError, ExtentError):
            self.has_failed = True
            return None
        self.crash_model.on_crash(touched)
        failure = self._check_persistence()
        if failure is not None:
            return failure
        self._resync_after_crash()
        self._crash_epoch_start = self.crash_model.op_count
        return None

    def _check_persistence(self) -> Optional[str]:
        """The section 5 persistence property, against the crashed state."""
        if self.has_failed:
            return None
        for key in self.crash_model.tracked_keys():
            allowed = self.crash_model.allowed_after_crash(key)
            try:
                observed: Optional[bytes] = self.store.get(key)
            except (NotFoundError, CorruptionError, ExtentError):
                observed = None
            if not allowed.permits(observed):
                return (
                    f"persistence violated for key {key!r}: observed "
                    f"{_render(observed)}, allowed values "
                    f"{{{', '.join(_render(v) for v in sorted(allowed.values))}}}"
                    f"{' or absent' if allowed.absent_allowed else ''}"
                )
        return None

    def _resync_after_crash(self) -> None:
        """Adopt the (legal) post-crash state as the new model baseline."""
        tracker = self.system.tracker
        observed: Dict[bytes, bytes] = {}
        for key in self.store.keys():
            try:
                observed[key] = self.store.get(key)
            except (NotFoundError, CorruptionError, ExtentError):
                continue
        self.model = ReferenceKvStore()
        for key, value in observed.items():
            self.model.put(key, value)
            # Anchor the observation: post-crash readable implies durable,
            # so later crashes must preserve it unless superseded.
            self.crash_model.record_put(key, value, Dependency.root(tracker))
        for key in self.crash_model.tracked_keys():
            if key not in observed:
                self.crash_model.record_delete(key, Dependency.root(tracker))
        self._uncertain.clear()

    # ------------------------------------------------------------------
    # failure injection (section 4.4)

    def _op_faildiskonce(self, extent: int) -> Optional[str]:
        if not 0 <= extent < self.system.config.geometry.num_extents:
            return None  # shrunk/out-of-range extent: nothing to arm
        self.system.disk.arm_fault(extent, FailureMode.ONCE)
        self.has_failed = True
        return None

    def _op_clearfaults(self) -> Optional[str]:
        self.system.disk.clear_faults()
        return None

    # ------------------------------------------------------------------
    # cross-invariants (Fig. 3 line 24)

    def _check_invariants(self, index: int, op: Operation) -> Optional[CheckFailure]:
        """Fig. 3 line 24: both sides must store the same mapping.

        Keys whose state is uncertain after an injected failure are skipped
        (the paper's relaxed equivalence); everything else stays strict --
        in particular, failures elsewhere never excuse wrong or lost data
        on untouched keys, which is exactly how issue #5 (reclamation
        forgetting chunks after a read error) is caught.
        """
        try:
            impl_keys = set(self.store.keys())
        except IoError:
            return None  # enumeration itself hit an injected fault
        model_keys = set(self.model.keys())
        uncertain = set(self._uncertain)
        if (impl_keys - uncertain) != (model_keys - uncertain):
            missing = model_keys - impl_keys - uncertain
            extra = impl_keys - model_keys - uncertain
            return CheckFailure(
                index,
                op,
                f"key sets diverge: missing {sorted(missing)!r}, "
                f"extra {sorted(extra)!r}",
            )
        # Sorted so the first-reported divergence is independent of the
        # per-process hash seed -- campaign artifacts must be
        # byte-identical across runs and worker counts.
        for key in sorted(model_keys - uncertain):
            try:
                impl_value = self.store.get(key)
            except IoError:
                continue  # injected read failure; key state untouched
            except ShardStoreError as exc:
                return CheckFailure(
                    index, op, f"invariant get({key!r}) failed: {exc}"
                )
            if impl_value != self.model.get(key):
                return CheckFailure(
                    index,
                    op,
                    f"value diverges for {key!r}: impl has "
                    f"{_render(impl_value)}, model {_render(self.model.get(key))}",
                )
        return None


class NodeHarness(Harness):
    """Storage-node (RPC + control plane) conformance (issues #4 etc.).

    With ``wire=True`` every request-plane operation is marshalled through
    the messaging protocol (:mod:`repro.shardstore.protocol`) -- encode,
    dispatch, decode -- so the request-parsing and routing layer the
    paper's section 8.3 singles out is validated by the same conformance
    properties as the store beneath it.
    """

    def __init__(
        self,
        faults: Optional[FaultSet] = None,
        seed: int = 0,
        num_disks: int = 3,
        *,
        wire: bool = False,
        recorder: Recorder = NULL_RECORDER,
        retry_policy: Optional["RetryPolicy"] = None,
        breaker: Optional["BreakerConfig"] = None,
    ) -> None:
        self.faults = faults or FaultSet.none()
        self.node = StorageNode(
            num_disks=num_disks,
            config=_small_test_config(self.faults, seed, 0.0, recorder),
            retry_policy=retry_policy,
            breaker=breaker,
        )
        self.model = ReferenceKvStore()
        self.wire = wire

    # -- wire-mode plumbing ---------------------------------------------

    def _wire(self, request):
        from repro.shardstore.protocol import (
            decode_response,
            dispatch,
            encode_request,
        )

        return decode_response(dispatch(self.node, encode_request(request)))

    def _wire_get(self, key: bytes) -> Optional[bytes]:
        from repro.shardstore.protocol import Request

        response = self._wire(Request(op="get", key=key))
        if response.status == "ok":
            return response.value
        if response.status in ("not_found", "retry"):
            return None
        raise CorruptionError(f"wire get failed: {response.message}")

    def apply(self, index: int, op: Operation) -> Optional[CheckFailure]:
        try:
            message = self._dispatch(op)
        except ShardStoreError as exc:
            return CheckFailure(index, op, f"unexpected {type(exc).__name__}: {exc}")
        if message is not None:
            return CheckFailure(index, op, message)
        return None

    def _dispatch(self, op: Operation) -> Optional[str]:
        if self.wire and op.name in ("Put", "Get", "Delete", "ListShards"):
            return self._dispatch_wire(op)
        name, args = op.name, op.args
        if name in ("Put", "Get", "Delete") and args and not _valid_key(args[0]):
            try:
                self.node.get(args[0])
                return f"node accepted invalid key {args[0]!r}"
            except InvalidRequestError:
                return None
            except ShardStoreError:
                return f"node mishandled invalid key {args[0]!r}"
        if name == "BulkCreate":
            (pairs,) = args
            pairs = tuple(p for p in pairs if _valid_key(p[0]))
            op = Operation(name, (pairs,))
            name, args = op.name, op.args
        if name == "BulkDelete":
            (keys,) = args
            keys = tuple(k for k in keys if _valid_key(k))
            op = Operation(name, (keys,))
            name, args = op.name, op.args
        if name == "Put":
            key, value = args
            self.node.put(key, value)
            self.model.put(key, value)
            return None
        if name == "Get":
            (key,) = args
            try:
                model_value: Optional[bytes] = self.model.get(key)
            except NotFoundError:
                model_value = None
            try:
                impl_value: Optional[bytes] = self.node.get(key)
            except (NotFoundError, RetryableError):
                impl_value = None
            except CorruptionError as exc:
                return f"get corrupted: {exc}"
            if impl_value != model_value:
                return (
                    f"get diverges: impl {_render(impl_value)}, "
                    f"model {_render(model_value)}"
                )
            return None
        if name == "Delete":
            (key,) = args
            try:
                self.node.delete(key)
            except RetryableError:
                return None  # target out of service; model keeps the key
            except KeyNotFoundError:
                if self.model.contains(key):
                    return "delete raised KeyNotFoundError but the model has the key"
                return None
            if not self.model.contains(key):
                return "delete succeeded but the model lacks the key"
            self.model.delete(key)
            return None
        if name == "ListShards":
            listed = set(self.node.keys())
            expected = set(self.model.keys())
            if listed != expected:
                return (
                    f"listing diverges: impl {sorted(listed)!r}, "
                    f"model {sorted(expected)!r}"
                )
            return None
        if name == "BulkCreate":
            (pairs,) = args
            self.node.bulk_create(list(pairs))
            for key, value in pairs:
                self.model.put(key, value)
            return None
        if name == "BulkDelete":
            (keys,) = args
            self.node.bulk_delete(list(keys))
            for key in keys:
                if self.model.contains(key):
                    self.model.delete(key)
            return None
        if name == "MigrateShard":
            key, target = args
            try:
                moved = self.node.migrate_shard(key, target)
            except RetryableError:
                return None  # target out of service: allowed failure
            if moved != self.model.contains(key):
                return (
                    f"migrate_shard({key!r}) returned {moved}, model "
                    f"says present={self.model.contains(key)}"
                )
            return self._check_all_keys()
        if name == "RemoveDisk":
            (disk_id,) = args
            try:
                self.node.remove_disk(disk_id)
            except InvalidRequestError:
                pass  # already removed / last disk: allowed no-op
            return self._check_all_keys()
        if name == "ReturnDisk":
            (disk_id,) = args
            try:
                self.node.return_disk(disk_id)
            except InvalidRequestError:
                pass
            return self._check_all_keys()
        return f"unknown operation {name}"

    def _dispatch_wire(self, op: Operation) -> Optional[str]:
        """Request-plane ops marshalled through the messaging protocol."""
        from repro.shardstore.protocol import Request

        name, args = op.name, op.args
        if name in ("Put", "Get", "Delete") and args and not _valid_key(args[0]):
            response = self._wire(Request(op="get", key=args[0]))
            if response.status != "invalid":
                return f"wire accepted invalid key {args[0]!r}: {response}"
            return None
        if name == "Put":
            key, value = args
            response = self._wire(Request(op="put", key=key, value=value))
            if not response.ok:
                return f"wire put failed: {response}"
            self.model.put(key, value)
            return None
        if name == "Get":
            (key,) = args
            observed = self._wire_get(key)
            try:
                expected: Optional[bytes] = self.model.get(key)
            except NotFoundError:
                expected = None
            if observed != expected:
                return (
                    f"wire get diverges: impl {_render(observed)}, "
                    f"model {_render(expected)}"
                )
            return None
        if name == "Delete":
            (key,) = args
            response = self._wire(Request(op="delete", key=key))
            if response.status == "retry":
                return None  # out-of-service target; model keeps the key
            if response.status == "not_found":
                if self.model.contains(key):
                    return f"wire delete lost the key: {response}"
                return None
            if not response.ok:
                return f"wire delete failed: {response}"
            if not self.model.contains(key):
                return "wire delete succeeded but the model lacks the key"
            self.model.delete(key)
            return None
        if name == "ListShards":
            from repro.shardstore.protocol import Request as _Request

            response = self._wire(_Request(op="list"))
            if not response.ok:
                return f"wire list failed: {response}"
            if sorted(response.shards) != self.model.keys():
                return (
                    f"wire listing diverges: {sorted(response.shards)!r} vs "
                    f"{self.model.keys()!r}"
                )
            return None
        return f"wire mode cannot route {name}"

    def _check_all_keys(self) -> Optional[str]:
        """Control-plane ops must never lose or change shards."""
        for key in self.model.keys():
            try:
                impl_value = self.node.get(key)
            except RetryableError:
                continue  # temporarily unroutable is availability, not loss
            except ShardStoreError as exc:
                return f"shard {key!r} lost by control-plane op: {exc}"
            if impl_value != self.model.get(key):
                return (
                    f"shard {key!r} changed by control-plane op: "
                    f"{_render(impl_value)} != {_render(self.model.get(key))}"
                )
        return None


class ChunkStoreModelHarness(Harness):
    """Checks the chunk-store *reference model's* own invariants.

    The paper's issue #15 was a bug in the model, not the implementation;
    this harness is the invariant check that caught it.
    """

    def __init__(self, faults: Optional[FaultSet] = None, seed: int = 0) -> None:
        self.model = ReferenceChunkStore(faults or FaultSet.none())
        self._live: List = []

    def apply(self, index: int, op: Operation) -> Optional[CheckFailure]:
        if op.name == "Put":
            _, value = op.args
            locator = self.model.put(value)
            self._live.append((locator, value))
        elif op.name == "Delete":
            if self._live:
                locator, _ = self._live.pop(0)
                self.model.delete(locator)
        elif op.name == "Get":
            for locator, value in self._live:
                try:
                    stored = self.model.get(locator)
                except NotFoundError:
                    return CheckFailure(
                        index, op, f"live locator {int(locator)} unreadable"
                    )
                if stored != value:
                    return CheckFailure(
                        index,
                        op,
                        f"locator {int(locator)} returns wrong data "
                        "(aliased by reuse?)",
                    )
        if not self.model.locators_unique():
            return CheckFailure(index, op, "model issued a duplicate locator")
        return None


# ----------------------------------------------------------------------
# the runner


@dataclass
class ConformanceReport:
    """Outcome of a conformance run (many random sequences)."""

    sequences_run: int = 0
    ops_run: int = 0
    failure: Optional[CheckFailure] = None
    failing_sequence: Optional[List[Operation]] = None
    failing_seed: Optional[int] = None

    @property
    def passed(self) -> bool:
        return self.failure is None


def run_conformance(
    harness_factory: Callable[[int], Harness],
    alphabet: Alphabet,
    *,
    sequences: int = 50,
    ops_per_sequence: int = 60,
    bias: Optional[BiasConfig] = None,
    base_seed: int = 0,
    ctx_kwargs: Optional[dict] = None,
) -> ConformanceReport:
    """Run many random sequences; stop at (and report) the first failure.

    ``harness_factory(seed)`` must build a fresh, deterministic harness:
    replaying the same seed and sequence must reproduce the failure, which
    is what makes minimization possible.
    """
    bias = bias or BiasConfig()
    report = ConformanceReport()
    kwargs = ctx_kwargs or {}
    for sequence_index in range(sequences):
        seed = base_seed + sequence_index
        rng = random.Random(seed)
        ops = alphabet.generate_sequence(rng, ops_per_sequence, bias, **kwargs)
        harness = harness_factory(seed)
        failure = harness.run(ops)
        report.sequences_run += 1
        report.ops_run += len(ops)
        if failure is not None:
            report.failure = failure
            report.failing_sequence = ops
            report.failing_seed = seed
            return report
    return report


def replay_fails(
    harness_factory: Callable[[int], Harness], seed: int
) -> Callable[[List[Operation]], bool]:
    """A deterministic failure predicate for the minimizer."""

    def fails(ops: List[Operation]) -> bool:
        harness = harness_factory(seed)
        return harness.run(list(ops)) is not None

    return fails


# ----------------------------------------------------------------------
# campaign shard entry point


def run_shard(spec: "ShardSpec") -> "ShardResult":
    """Picklable campaign entry point: one conformance work unit.

    ``spec.params`` select the harness (``store``/``node``/``model``), the
    alphabet, an optional injected fault, and the sequence budget; all
    randomness derives from ``spec.seed``, so rerunning the spec is
    byte-identical and any failure replays from its recorded seed alone
    (``repro conformance --seed <failing_seed> --sequences 1``).
    """
    from repro.campaign.spec import ShardFailure, ShardResult
    from repro.shardstore.faults import Fault, FaultSet, component_of
    from repro.shardstore.observability import RingRecorder

    from .alphabet import crash_alphabet, failure_alphabet, node_alphabet, store_alphabet
    from .coverage import LineCoverage
    from .minimize import minimize

    fault_name = spec.param("fault")
    faults = (
        FaultSet.only(Fault[fault_name]) if fault_name else FaultSet.none()
    )
    uuid_bias = spec.param("uuid_bias", 0.0)
    harness_kind = spec.param("harness", "store")
    alphabet = {
        "store": store_alphabet,
        "crash": crash_alphabet,
        "failure": failure_alphabet,
        "node": node_alphabet,
    }[spec.param("alphabet", "store")]()
    ctx_kwargs = None
    num_disks = spec.param("num_disks", 3)
    if harness_kind == "node":
        ctx_kwargs = {"num_disks": num_disks}

    # Fault-matrix shards run with ``retries_disabled`` so the node keeps
    # the historical fail-fast semantics the Fig. 5 detectors were tuned
    # against (e.g. fault #5's dropped-shard read must surface, not be
    # masked by a retry or absorbed by a breaker demotion).
    retries_disabled = bool(spec.param("retries_disabled", False))

    def make_factory(recorder: Recorder) -> Callable[[int], Harness]:
        if harness_kind == "node":
            retry_policy = RetryPolicy.disabled() if retries_disabled else None
            breaker = BreakerConfig.disabled() if retries_disabled else None
            return lambda s: NodeHarness(
                faults,
                s,
                num_disks=num_disks,
                recorder=recorder,
                retry_policy=retry_policy,
                breaker=breaker,
            )
        if harness_kind == "model":
            return lambda s: ChunkStoreModelHarness(faults, s)
        return lambda s: StoreHarness(
            faults, s, uuid_magic_bias=uuid_bias, recorder=recorder
        )

    def seed_recorder(recorder: RingRecorder) -> RingRecorder:
        """Stamp shard identity (and the armed fault) into a fresh trace."""
        recorder.event(
            "shard", kind=spec.kind, harness=harness_kind, seed=spec.seed
        )
        if fault_name:
            fault = Fault[fault_name]
            recorder.fault_event(
                fault, component_of(fault), "armed for this shard"
            )
        return recorder

    trace_enabled = bool(spec.param("trace", False))
    shard_recorder = seed_recorder(RingRecorder()) if trace_enabled else None
    factory = make_factory(shard_recorder if trace_enabled else NULL_RECORDER)
    bias = (
        BiasConfig.unbiased() if spec.param("unbiased", False) else BiasConfig()
    )

    collector = LineCoverage() if spec.param("coverage", False) else None
    run = lambda: run_conformance(  # noqa: E731
        factory,
        alphabet,
        sequences=spec.param("sequences", 25),
        ops_per_sequence=spec.param("ops", 60),
        bias=bias,
        base_seed=spec.seed,
        ctx_kwargs=ctx_kwargs,
    )
    if collector is not None:
        with collector:
            report = run()
    else:
        report = run()

    failures = []
    if report.failure is not None:
        minimized: Optional[List[str]] = None
        reduced = report.failing_sequence
        if spec.param("minimize", True) and report.failing_sequence:
            fails = replay_fails(factory, report.failing_seed)
            reduced, _ = minimize(report.failing_sequence, fails)
            minimized = [str(op) for op in reduced]
        failure_trace: Optional[List] = None
        failure_events: Optional[List] = None
        if trace_enabled and reduced:
            # Focused evidence: replay the (minimized) failing sequence on a
            # fresh recorder, so the failure record's trace covers exactly
            # the reproducer rather than the whole shard.
            focus = seed_recorder(RingRecorder())
            make_factory(focus)(report.failing_seed).run(list(reduced))
            focus_snap = focus.snapshot()
            failure_trace = focus_snap["trace"]
            failure_events = focus_snap["fault_events"]
        failures.append(
            ShardFailure(
                kind=spec.kind,
                seed=report.failing_seed,
                detail=str(report.failure),
                fault=fault_name,
                minimized=minimized,
                trace=failure_trace,
                fault_events=failure_events,
            )
        )
    coverage_lines: Optional[List[Tuple[str, int]]] = None
    if collector is not None:
        coverage_lines = sorted(
            (os.path.basename(filename), lineno)
            for filename, lineno in collector.report.lines
        )
    shard_snap = shard_recorder.snapshot() if shard_recorder else None
    return ShardResult(
        shard_id=spec.shard_id,
        kind=spec.kind,
        seed=spec.seed,
        cases=report.sequences_run,
        ops=report.ops_run,
        failures=failures,
        expected_failure=bool(fault_name),
        detector=spec.param("detector") or _default_detector(fault_name),
        fault=fault_name,
        coverage_lines=coverage_lines,
        metrics=shard_snap["metrics"] if shard_snap else None,
        fault_events=shard_snap["fault_events"] if shard_snap else None,
        trace=shard_snap["trace"] if shard_snap else None,
    )


def _default_detector(fault_name: Optional[str]) -> str:
    if not fault_name:
        return ""
    from repro.shardstore.faults import Fault, detector_for

    return detector_for(Fault[fault_name])


def _valid_key(key) -> bool:
    from repro.shardstore.store import MAX_KEY_LEN

    return isinstance(key, bytes) and 0 < len(key) <= MAX_KEY_LEN


def _render(value: Optional[bytes]) -> str:
    if value is None:
        return "<absent>"
    if len(value) > 16:
        return f"<{len(value)} bytes>"
    return repr(value)
