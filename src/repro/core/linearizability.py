"""Linearizability checking against a sequential reference model.

The paper's concurrency property (section 6): concurrent executions of
ShardStore should be linearizable with respect to the sequential reference
models.  The concurrency harnesses record a *history* -- per-operation
invocation and response timestamps (the model checker's step counter is
the logical clock) plus observed results -- and this module checks whether
some linearization (a total order consistent with the real-time partial
order) explains every observed result under the reference model.

The algorithm is Wing & Gong's exhaustive search: repeatedly pick a
minimal (no earlier-returning operation still pending) operation, apply it
to the model, and backtrack when the observed result disagrees.  With
memoisation on (pending-set, model-state) it handles the history sizes our
harnesses produce comfortably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple


@dataclass(frozen=True)
class HistoryOp:
    """One completed operation in a concurrent history."""

    op_id: int
    name: str
    args: Tuple
    result: Any
    invoked_at: int
    returned_at: int


class HistoryRecorder:
    """Collects a history from a concurrent harness.

    A shared logical clock is enough inside the model checker, because
    execution is serialised: invocation/response order is exact.
    """

    def __init__(self) -> None:
        self._clock = 0
        self._ops: List[HistoryOp] = []
        self._next_id = 0

    def tick(self) -> int:
        self._clock += 1
        return self._clock

    def record(self, name: str, args: Tuple, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` as operation ``name(args)``; records the interval."""
        op_id = self._next_id
        self._next_id += 1
        invoked = self.tick()
        result = fn()
        returned = self.tick()
        self._ops.append(
            HistoryOp(
                op_id=op_id,
                name=name,
                args=args,
                result=result,
                invoked_at=invoked,
                returned_at=returned,
            )
        )
        return result

    def history(self) -> List[HistoryOp]:
        return sorted(self._ops, key=lambda op: op.invoked_at)


# Model protocol: factory() -> state; apply(state, op) -> (result, state').
ModelFactory = Callable[[], Any]
ModelApply = Callable[[Any, HistoryOp], Tuple[Any, Any]]


def check_linearizable(
    history: List[HistoryOp],
    model_factory: ModelFactory,
    model_apply: ModelApply,
    *,
    fingerprint: Optional[Callable[[Any], Any]] = None,
    max_nodes: int = 200_000,
) -> bool:
    """True iff ``history`` is linearizable w.r.t. the sequential model.

    ``model_apply`` must be pure (return a new state).  ``fingerprint``
    hashes a model state for memoisation (defaults to ``repr``).
    """
    ops = sorted(history, key=lambda op: op.op_id)
    fingerprint = fingerprint or repr
    n = len(ops)
    if n == 0:
        return True

    seen: Set[Tuple[FrozenSet[int], Any]] = set()
    nodes = 0

    def search(done: FrozenSet[int], state: Any) -> bool:
        nonlocal nodes
        nodes += 1
        if nodes > max_nodes:
            raise RuntimeError("linearizability search exceeded node budget")
        if len(done) == n:
            return True
        key = (done, fingerprint(state))
        if key in seen:
            return False
        seen.add(key)
        # An op is a candidate if every op that *returned before it was
        # invoked* is already linearized.
        pending = [op for op in ops if op.op_id not in done]
        min_return = min(op.returned_at for op in pending)
        for op in pending:
            if op.invoked_at > min_return:
                continue  # a concurrent-earlier op must go first
            expected, next_state = model_apply(state, op)
            if expected != op.result:
                continue
            if search(done | {op.op_id}, next_state):
                return True
        return False

    return search(frozenset(), model_factory())


# ----------------------------------------------------------------------
# a ready-made key-value model for the store harnesses


def kv_model_factory() -> Dict[bytes, bytes]:
    return {}


def kv_model_apply(
    state: Dict[bytes, bytes], op: HistoryOp
) -> Tuple[Any, Dict[bytes, bytes]]:
    """Sequential semantics of the key-value API, for linearization."""
    if op.name == "put":
        key, value = op.args
        new_state = dict(state)
        new_state[key] = value
        return None, new_state
    if op.name == "get":
        (key,) = op.args
        return state.get(key), state
    if op.name == "delete":
        (key,) = op.args
        new_state = dict(state)
        new_state.pop(key, None)
        return None, new_state
    raise ValueError(f"unknown op {op.name}")


def kv_fingerprint(state: Dict[bytes, bytes]) -> FrozenSet:
    return frozenset(state.items())
