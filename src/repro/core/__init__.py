"""The validation stack: the paper's contribution (sections 3-5).

Property-based conformance checking against executable reference models,
argument biasing, test-case minimization, crash-consistency checking (the
persistence and forward-progress properties), failure injection with
relaxed equivalence, coverage metrics, and linearizability checking.
"""

from .alphabet import (
    Alphabet,
    BiasConfig,
    GenContext,
    Operation,
    OpSpec,
    crash_alphabet,
    failure_alphabet,
    node_alphabet,
    store_alphabet,
)
from .conformance import (
    CheckFailure,
    ChunkStoreModelHarness,
    ConformanceReport,
    Harness,
    NodeHarness,
    StoreHarness,
    replay_fails,
    run_conformance,
)
from .coverage import CoverageReport, LineCoverage, measure
from .crash_checker import (
    CrashExplorationResult,
    coarse_crash_states,
    explore_block_level,
)
from .linearizability import (
    HistoryOp,
    HistoryRecorder,
    check_linearizable,
    kv_fingerprint,
    kv_model_apply,
    kv_model_factory,
)
from .model_verify import (
    VerifyResult,
    verify_chunkstore_model,
    verify_kv_model,
    verify_model,
)
from .minimize import (
    Minimizer,
    MinimizeStats,
    minimize,
    sequence_bytes,
    sequence_crashes,
)
from .report import (
    DetectionOutcome,
    campaign_summary,
    count_lines,
    detection_matrix,
    loc_table,
    outcomes_from_campaign,
)

__all__ = [
    "Alphabet",
    "BiasConfig",
    "CheckFailure",
    "ChunkStoreModelHarness",
    "ConformanceReport",
    "CoverageReport",
    "CrashExplorationResult",
    "DetectionOutcome",
    "GenContext",
    "Harness",
    "HistoryOp",
    "HistoryRecorder",
    "LineCoverage",
    "MinimizeStats",
    "Minimizer",
    "NodeHarness",
    "OpSpec",
    "Operation",
    "StoreHarness",
    "VerifyResult",
    "campaign_summary",
    "check_linearizable",
    "coarse_crash_states",
    "count_lines",
    "crash_alphabet",
    "detection_matrix",
    "explore_block_level",
    "failure_alphabet",
    "kv_fingerprint",
    "kv_model_apply",
    "kv_model_factory",
    "loc_table",
    "measure",
    "minimize",
    "node_alphabet",
    "outcomes_from_campaign",
    "replay_fails",
    "run_conformance",
    "sequence_bytes",
    "sequence_crashes",
    "store_alphabet",
    "verify_chunkstore_model",
    "verify_kv_model",
    "verify_model",
]
