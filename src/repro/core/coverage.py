"""Code-coverage metrics for test-harness quality (section 4.2).

Property-based tests only ever check states the harness can reach; as code
evolves, new functionality can silently fall outside that reach (the
paper's missed-bug post-mortem in section 8.3 -- a cache-miss path no test
ever hit).  The paper's mitigation is to generate coverage metrics for the
implementation code during harness runs and watch for blind spots.

This module implements line coverage over the ShardStore implementation
using ``sys.settrace`` (no external tooling), with set-difference helpers
so the section 4.2 benchmark can quantify what argument *bias* buys: lines
reached by a biased alphabet that an unbiased one misses, and vice versa.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set, Tuple

Line = Tuple[str, int]  # (filename, line number)

_SHARDSTORE_DIR = os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))
) + os.sep + "shardstore"


@dataclass
class CoverageReport:
    """Executed lines, grouped by file."""

    lines: Set[Line] = field(default_factory=set)

    def count(self) -> int:
        return len(self.lines)

    def by_file(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for filename, _ in self.lines:
            short = os.path.basename(filename)
            out[short] = out.get(short, 0) + 1
        return dict(sorted(out.items()))

    def minus(self, other: "CoverageReport") -> "CoverageReport":
        """Lines this run reached that ``other`` did not (blind spots)."""
        return CoverageReport(lines=self.lines - other.lines)

    def union(self, other: "CoverageReport") -> "CoverageReport":
        return CoverageReport(lines=self.lines | other.lines)


class LineCoverage:
    """Context manager collecting executed implementation lines.

    By default only files under ``repro/shardstore`` are traced -- the
    implementation whose blind spots we care about -- so harness and model
    code does not pollute the report.
    """

    def __init__(self, path_prefix: Optional[str] = None) -> None:
        self.path_prefix = path_prefix or _SHARDSTORE_DIR
        self.report = CoverageReport()
        self._previous_trace = None

    def _trace(self, frame, event, arg):  # noqa: ANN001 - trace protocol
        filename = frame.f_code.co_filename
        if not filename.startswith(self.path_prefix):
            return None  # do not trace into this function's frames
        if event == "line":
            self.report.lines.add((filename, frame.f_lineno))
        return self._trace

    def __enter__(self) -> "LineCoverage":
        self._previous_trace = sys.gettrace()
        sys.settrace(self._trace)
        return self

    def __exit__(self, *exc) -> None:
        sys.settrace(self._previous_trace)


def measure(fn: Callable[[], None], path_prefix: Optional[str] = None) -> CoverageReport:
    """Run ``fn`` under line coverage; returns the report."""
    collector = LineCoverage(path_prefix)
    with collector:
        fn()
    return collector.report
