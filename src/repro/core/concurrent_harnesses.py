"""Concurrency harnesses for stateless model checking (section 6).

Each function returns a *body factory* for
:func:`repro.concurrency.model.model`: called once per execution, it
builds fresh state and returns the concurrent test body.  These are the
Python analogues of the paper's hand-written Loom/Shuttle harnesses --
Fig. 4's index harness and the ones behind issues #11-#13 and #16.

Conventions: assertion failures and deadlocks inside a body are the
checker's verdicts; bodies must be deterministic apart from scheduling
(all randomness is seeded from construction arguments).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.concurrency.primitives import spawn
from repro.shardstore.chunk import KIND_DATA
from repro.shardstore.config import StoreConfig
from repro.shardstore.disk import DiskGeometry
from repro.shardstore.errors import NotFoundError, ShardStoreError
from repro.shardstore.faults import FaultSet
from repro.shardstore.rpc import StorageNode
from repro.shardstore.store import StoreSystem

from .linearizability import (
    HistoryRecorder,
    check_linearizable,
    kv_fingerprint,
    kv_model_apply,
)

BodyFactory = Callable[[], Callable[[], None]]


def _mc_config(faults: FaultSet, seed: int = 0) -> StoreConfig:
    """Small geometry so model-checked executions stay short."""
    return StoreConfig(
        geometry=DiskGeometry(num_extents=10, extent_size=2048, page_size=128),
        faults=faults,
        seed=seed,
        memtable_flush_threshold=4,
        superblock_flush_cadence=4,
    )


# ----------------------------------------------------------------------
# issue #11: locator invalidated by a write/flush race (chunk store)


def locator_race_harness(faults: FaultSet, seed: int = 0) -> BodyFactory:
    """Two concurrent chunk writers; both locators must stay valid."""

    def factory() -> Callable[[], None]:
        system = StoreSystem(_mc_config(faults, seed))
        chunk_store = system.store.chunk_store
        results: List[Tuple] = [None, None]

        def writer(slot: int, key: bytes, payload: bytes) -> Callable[[], None]:
            def body() -> None:
                locator, _ = chunk_store.put_chunk(KIND_DATA, key, payload)
                results[slot] = (locator, key, payload)

            return body

        def body() -> None:
            t1 = spawn(writer(0, b"left", b"L" * 40), "writer-left")
            t2 = spawn(writer(1, b"right", b"R" * 40), "writer-right")
            t1.join()
            t2.join()
            for locator, key, payload in results:
                chunk = chunk_store.get_chunk(locator, expected_key=key)
                assert chunk.payload == payload, (
                    f"locator {locator} returned wrong payload"
                )

        return body

    return factory


# ----------------------------------------------------------------------
# issue #12: buffer-pool exhaustion deadlock (superblock)


def buffer_pool_harness(faults: FaultSet, seed: int = 0) -> BodyFactory:
    """A buffer-holding reader racing a flusher.

    Correct lock order (buffer before state) always completes; the faulty
    flush takes state before buffer and deadlocks against the reader.
    """

    def factory() -> Callable[[], None]:
        system = StoreSystem(_mc_config(faults, seed))
        superblock = system.store.superblock

        def reader() -> None:
            superblock.with_buffer(superblock.current_epoch)

        def flusher() -> None:
            superblock.flush()

        def body() -> None:
            t1 = spawn(reader, "buffer-reader")
            t2 = spawn(flusher, "flusher")
            t1.join()
            t2.join()

        return body

    return factory


# ----------------------------------------------------------------------
# issue #13: listing racing shard removal (API)


def list_remove_harness(faults: FaultSet, seed: int = 0) -> BodyFactory:
    """keys() concurrent with a delete must stay a legal snapshot."""

    def factory() -> Callable[[], None]:
        node = StorageNode(num_disks=2, config=_mc_config(faults, seed))
        keys = [b"alpha", b"beta", b"gamma"]
        for key in keys:
            node.put(key, b"v-" + key)
        listing_box: List[Optional[List[bytes]]] = [None]

        def lister() -> None:
            listing_box[0] = node.keys()

        def remover() -> None:
            node.delete(b"beta")

        def body() -> None:
            t1 = spawn(lister, "lister")
            t2 = spawn(remover, "remover")
            t1.join()
            t2.join()
            listing = listing_box[0]
            assert listing is not None, "listing crashed"
            # Keys never removed must appear exactly once.
            for stable in (b"alpha", b"gamma"):
                assert listing.count(stable) == 1, (
                    f"listing lost or duplicated {stable!r}: {listing!r}"
                )

        return body

    return factory


# ----------------------------------------------------------------------
# issue #14: compaction racing reclamation (index) -- the Fig. 4 harness


def compaction_reclaim_harness(faults: FaultSet, seed: int = 0) -> BodyFactory:
    """The paper's section 6 example.

    Set up an index with on-disk runs, then run concurrently: LSM
    compaction, a task that rotates the open extent and reclaims
    everything reclaimable, and a reader asserting no index entry is lost.
    The faulty compaction does not pin the extent it writes the merged run
    into, so reclamation can scan-and-reset it before the metadata update
    publishes the new chunk.
    """

    def factory() -> Callable[[], None]:
        system = StoreSystem(_mc_config(faults, seed))
        store = system.store
        expected = {}
        # Values sized so shard data spans more than one extent: the keys
        # whose chunks are *off* the reclaimed extent have index entries
        # only in the old runs and the merged run -- the entries the race
        # loses (reclamation's own relocation flush re-covers every key it
        # touches, which would otherwise mask the bug).
        for i in range(8):
            key = b"key%d" % i
            value = bytes([0x40 + i]) * 220
            store.put(key, value)
            expected[key] = value
            if i % 2 == 1:
                store.flush_index()  # several runs -> compaction has work
        # Rotate the open extent so compaction claims a *fresh* extent for
        # the merged run -- an extent holding nothing else live, so a
        # racing reclamation of it has nothing to evacuate (and therefore
        # nothing that would re-index the lost entries and mask the bug).
        store.chunk_store.rotate_open()

        def compactor() -> None:
            store.compact()

        def reclaimer() -> None:
            # Rotate again and reclaim whatever extent was open: if this
            # lands between compaction's chunk write and its metadata
            # update, that extent holds the not-yet-referenced merged run.
            target = store.chunk_store.rotate_open()
            if target is not None:
                store.reclaim(target)

        def body() -> None:
            t1 = spawn(compactor, "compaction")
            t2 = spawn(reclaimer, "reclamation")
            t1.join()
            t2.join()
            # In-memory run entries can mask the on-disk loss (the
            # metadata's dangling pointer to the destroyed merged-run
            # chunk), so the verdict comes after a clean reboot -- exactly
            # where the paper says the lost index entries surface.
            recovered = system.clean_reboot()
            for key, value in expected.items():
                try:
                    got = recovered.get(key)
                except ShardStoreError as exc:
                    raise AssertionError(
                        f"index entry for {key!r} lost: {exc}"
                    ) from exc
                assert got == value, f"wrong value for {key!r}"

        return body

    return factory


# ----------------------------------------------------------------------
# issue #16: concurrent bulk create/remove atomicity (API)


def bulk_race_harness(faults: FaultSet, seed: int = 0) -> BodyFactory:
    """Concurrent bulk_create and bulk_delete must appear atomic."""

    def factory() -> Callable[[], None]:
        node = StorageNode(num_disks=2, config=_mc_config(faults, seed))
        keys = [b"bk0", b"bk1", b"bk2"]
        for key in keys:
            node.put(key, b"old")

        def creator() -> None:
            node.bulk_create([(key, b"new") for key in keys])

        def deleter() -> None:
            node.bulk_delete(list(keys))

        def body() -> None:
            t1 = spawn(creator, "bulk-create")
            t2 = spawn(deleter, "bulk-delete")
            t1.join()
            t2.join()
            present = []
            for key in keys:
                try:
                    value = node.get(key)
                    assert value == b"new", f"stale value for {key!r}"
                    present.append(key)
                except NotFoundError:
                    pass
            assert len(present) in (0, len(keys)), (
                "bulk operations interleaved non-atomically: "
                f"{len(present)}/{len(keys)} keys present"
            )

        return body

    return factory


# ----------------------------------------------------------------------
# linearizability of the store API (the section 6 property itself)


def linearizability_harness(faults: FaultSet, seed: int = 0) -> BodyFactory:
    """Concurrent puts/gets whose history must linearize against the
    sequential key-value model."""

    def factory() -> Callable[[], None]:
        node = StorageNode(num_disks=2, config=_mc_config(faults, seed))
        node.put(b"shared", b"initial")
        recorder = HistoryRecorder()

        def writer(value: bytes) -> Callable[[], None]:
            def do_put() -> None:
                node.put(b"shared", value)
                return None  # the model's put result; the dep is internal

            def body() -> None:
                recorder.record("put", (b"shared", value), do_put)

            return body

        def reader() -> None:
            def do_get():
                try:
                    return node.get(b"shared")
                except NotFoundError:
                    return None

            recorder.record("get", (b"shared",), do_get)

        def body() -> None:
            tasks = [
                spawn(writer(b"from-w1"), "w1"),
                spawn(writer(b"from-w2"), "w2"),
                spawn(reader, "r1"),
            ]
            for task in tasks:
                task.join()
            history = recorder.history()
            # Seed the model with the initial value via a virtual put.
            state = {b"shared": b"initial"}
            ok = check_linearizable(
                history,
                lambda: state,
                kv_model_apply,
                fingerprint=kv_fingerprint,
            )
            assert ok, f"history not linearizable: {history!r}"

        return body

    return factory


# ----------------------------------------------------------------------
# cluster: quorum write / read-repair interleavings


def quorum_harness(faults: FaultSet, seed: int = 0) -> BodyFactory:
    """Concurrent quorum writers racing a reader through the cluster
    router; the history must linearize against the sequential model.

    The router assigns globally monotone versions (its linearization
    point) and replicas apply records under their per-node
    :class:`~repro.concurrency.primitives.Mutex` -- the scheduler's yield
    points -- so the checker explores replica-apply interleavings: a
    newer record landing on one replica before an older record reaches
    another, reads racing half-applied quorum writes, and read-repair
    re-writing stale replicas mid-race.  Quorum intersection (W + R > N)
    plus version monotonicity must make every such interleaving
    linearizable.  ``faults`` is unused: node-level faults are the
    campaign storms' job; this harness isolates pure scheduling races.
    """
    del faults  # cluster nodes model crashes via apply_fault, not FaultSet

    def factory() -> Callable[[], None]:
        from repro.cluster import ClusterConfig, ClusterRouter

        router = ClusterRouter(
            ClusterConfig(
                num_nodes=3,
                disks_per_node=1,
                replication=3,
                write_quorum=2,
                read_quorum=2,
                seed=seed,
                geometry=DiskGeometry(
                    num_extents=10, extent_size=2048, page_size=128
                ),
            )
        )
        router.put(b"shared", b"initial")
        recorder = HistoryRecorder()

        def writer(value: bytes) -> Callable[[], None]:
            def do_put() -> None:
                router.put(b"shared", value)
                return None

            def body() -> None:
                recorder.record("put", (b"shared", value), do_put)

            return body

        def reader() -> None:
            def do_get():
                try:
                    return router.get(b"shared")
                except NotFoundError:
                    return None

            recorder.record("get", (b"shared",), do_get)

        def body() -> None:
            tasks = [
                spawn(writer(b"from-w1"), "w1"),
                spawn(writer(b"from-w2"), "w2"),
                spawn(reader, "r1"),
            ]
            for task in tasks:
                task.join()
            history = recorder.history()
            state = {b"shared": b"initial"}
            ok = check_linearizable(
                history,
                lambda: state,
                kv_model_apply,
                fingerprint=kv_fingerprint,
            )
            assert ok, f"history not linearizable: {history!r}"

        return body

    return factory
