"""Crash-state exploration beyond the coarse DirtyReboot (section 5).

The default crash-consistency checking lives in
:class:`~repro.core.conformance.StoreHarness`: ``DirtyReboot(RebootType)``
operations choose component flushes and a writeback budget, which is the
paper's coarse-but-scalable approach.

This module adds the paper's *block-level* variant (compared to BOB and
CrashMonkey in section 5): from a given point in a history, exhaustively
enumerate the crash states reachable by any writeback order -- every
dependency-respecting subset of the pending IO queue -- and run the
persistence check in each.  The paper found this "has not found additional
bugs and is dramatically slower", and keeps it off by default; the
benchmark ``benchmarks/test_sec5_block_level_tradeoff.py`` reproduces that
comparison.

Implementation: the durable medium, durability tracker, and scheduler all
support snapshot/restore, so exploration is a DFS over ``pump_one(extent)``
choices with states deduplicated by their durable-record set.  At every
state we simulate the crash on the real recovery path (drop pending,
recover a fresh store) and evaluate the persistence property with the
harness's crash-aware model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Set

from repro.shardstore.store import ShardStore

from .conformance import StoreHarness

if TYPE_CHECKING:
    from repro.campaign.spec import ShardResult, ShardSpec


@dataclass
class CrashExplorationResult:
    """Outcome of block-level crash-state enumeration."""

    states_explored: int = 0
    states_deduplicated: int = 0
    truncated: bool = False  # hit the state budget
    violation: Optional[str] = None

    @property
    def passed(self) -> bool:
        return self.violation is None


def explore_block_level(
    harness: StoreHarness, *, max_states: int = 512
) -> CrashExplorationResult:
    """Enumerate reachable crash states from the harness's current point.

    Every visited state corresponds to one dependency-respecting prefix of
    writeback choices; for each, the real recovery path runs and the
    section 5 persistence property is checked.  The harness is restored to
    its pre-exploration state before returning.
    """
    system = harness.system
    scheduler = system.store.scheduler
    result = CrashExplorationResult()
    seen: Set[frozenset] = set()

    disk_snap = system.disk.snapshot()
    tracker_snap = system.tracker.snapshot()
    sched_snap = scheduler.snapshot()

    def check_crash_here() -> Optional[str]:
        """Crash in the current (snapshot-restorable) state and check."""
        inner_disk = system.disk.snapshot()
        inner_tracker = system.tracker.snapshot()
        inner_sched = scheduler.snapshot()
        scheduler.drop_pending()
        recovered = ShardStore(
            system.disk,
            system.tracker,
            system.config,
            rng=random.Random(0xC0FFEE),
            recover=True,
        )
        violation = _persistence_violation(harness, recovered)
        system.disk.restore(inner_disk)
        system.tracker.restore(inner_tracker)
        scheduler.restore(inner_sched)
        return violation

    def dfs() -> Optional[str]:
        durable_set = frozenset(
            record_id
            for record_id in range(system.tracker.snapshot()[0])
            if system.tracker.is_durable(record_id)
        )
        if durable_set in seen:
            result.states_deduplicated += 1
            return None
        seen.add(durable_set)
        if result.states_explored >= max_states:
            result.truncated = True
            return None
        result.states_explored += 1
        violation = check_crash_here()
        if violation is not None:
            return violation
        for extent in scheduler.eligible_extents():
            branch_disk = system.disk.snapshot()
            branch_tracker = system.tracker.snapshot()
            branch_sched = scheduler.snapshot()
            scheduler.pump_one(extent)
            violation = dfs()
            system.disk.restore(branch_disk)
            system.tracker.restore(branch_tracker)
            scheduler.restore(branch_sched)
            if violation is not None:
                return violation
        return None

    result.violation = dfs()
    system.disk.restore(disk_snap)
    system.tracker.restore(tracker_snap)
    scheduler.restore(sched_snap)
    return result


def _persistence_violation(
    harness: StoreHarness, recovered: ShardStore
) -> Optional[str]:
    """The section 5 persistence property against a recovered store."""
    from repro.shardstore.errors import ShardStoreError

    for key in harness.crash_model.tracked_keys():
        allowed = harness.crash_model.allowed_after_crash(key)
        try:
            observed: Optional[bytes] = recovered.get(key)
        except ShardStoreError:
            observed = None
        if not allowed.permits(observed):
            return (
                f"persistence violated for key {key!r} in block-level crash "
                f"state: observed "
                f"{'<absent>' if observed is None else f'<{len(observed)} bytes>'}"
            )
    return None


def run_shard(spec: "ShardSpec") -> "ShardResult":
    """Picklable campaign entry point: one crash-consistency work unit.

    Each unit applies a random operation prefix (store alphabet, seeded
    from ``spec.seed + i``) to a fresh harness, then enumerates the crash
    states reachable from that point -- block-level
    (:func:`explore_block_level`) or coarse sampling
    (:func:`coarse_crash_states`) per ``spec.params['mode']`` -- and
    checks the section 5 persistence property in every state.
    """
    from repro.campaign.spec import ShardFailure, ShardResult
    from repro.shardstore.faults import Fault, FaultSet, component_of
    from repro.shardstore.observability import NULL_RECORDER, RingRecorder

    from .alphabet import BiasConfig, store_alphabet

    fault_name = spec.param("fault")
    faults = (
        FaultSet.only(Fault[fault_name]) if fault_name else FaultSet.none()
    )
    mode = spec.param("mode", "block")
    sequences = spec.param("sequences", 2)
    prefix_ops = spec.param("prefix_ops", 20)
    max_states = spec.param("max_states", 128)
    alphabet = store_alphabet()
    bias = BiasConfig()
    recorder = RingRecorder() if spec.param("trace", False) else None
    if recorder is not None:
        recorder.event("shard", kind=spec.kind, mode=mode, seed=spec.seed)
        if fault_name:
            fault = Fault[fault_name]
            recorder.fault_event(
                fault, component_of(fault), "armed for this shard"
            )

    result = ShardResult(
        shard_id=spec.shard_id,
        kind=spec.kind,
        seed=spec.seed,
        expected_failure=bool(fault_name),
        detector="crash-consistency PBT" if fault_name else "",
        fault=fault_name,
    )

    def finish() -> ShardResult:
        if recorder is not None:
            snap = recorder.snapshot()
            result.metrics = snap["metrics"]
            result.fault_events = snap["fault_events"]
            result.trace = snap["trace"]
            for failure in result.failures:
                failure.trace = snap["trace"]
                failure.fault_events = snap["fault_events"]
        return result

    for index in range(sequences):
        seed = spec.seed + index
        rng = random.Random(seed)
        ops = alphabet.generate_sequence(rng, prefix_ops, bias)
        harness = StoreHarness(
            faults, seed, recorder=recorder if recorder else NULL_RECORDER
        )
        prefix_failure = harness.run(ops)
        result.ops += len(ops)
        if prefix_failure is not None:
            result.failures.append(
                ShardFailure(
                    kind=spec.kind,
                    seed=seed,
                    detail=f"prefix violation: {prefix_failure}",
                    fault=fault_name,
                )
            )
            return finish()
        if recorder is not None:
            recorder.event(
                "crash.explore", sequence=index, pending=harness.store.pending_io_count
            )
        if mode == "coarse":
            exploration = coarse_crash_states(
                harness, samples=max_states, seed=seed
            )
        else:
            exploration = explore_block_level(harness, max_states=max_states)
        result.cases += exploration.states_explored
        if exploration.violation is not None:
            if recorder is not None:
                recorder.event(
                    "crash.violation",
                    sequence=index,
                    states=exploration.states_explored,
                )
            result.failures.append(
                ShardFailure(
                    kind=spec.kind,
                    seed=seed,
                    detail=exploration.violation,
                    fault=fault_name,
                )
            )
            return finish()
    return finish()


def coarse_crash_states(
    harness: StoreHarness, *, samples: int = 16, seed: int = 0
) -> CrashExplorationResult:
    """The coarse comparison point: sample N random pump budgets.

    This is what a single ``DirtyReboot(pump=k)`` operation explores; the
    section 5 trade-off benchmark contrasts its cost and coverage with
    :func:`explore_block_level`.
    """
    system = harness.system
    scheduler = system.store.scheduler
    rng = random.Random(seed)
    result = CrashExplorationResult()

    disk_snap = system.disk.snapshot()
    tracker_snap = system.tracker.snapshot()
    sched_snap = scheduler.snapshot()
    pending = scheduler.pending_count
    for _ in range(samples):
        budget = rng.randrange(0, pending + 1) if pending else 0
        scheduler.pump(budget)
        scheduler.drop_pending()
        recovered = ShardStore(
            system.disk,
            system.tracker,
            system.config,
            rng=random.Random(0xC0FFEE),
            recover=True,
        )
        result.states_explored += 1
        violation = _persistence_violation(harness, recovered)
        system.disk.restore(disk_snap)
        system.tracker.restore(tracker_snap)
        scheduler.restore(sched_snap)
        if violation is not None:
            result.violation = violation
            return result
    return result
