"""Test-case minimization for failing operation sequences (section 4.3).

When a property-based test fails, the generated sequence reproduces the
failure; minimization repeatedly applies simple reduction heuristics --
"remove an operation from the sequence", "shrink an integer argument
towards zero" -- keeping a candidate only if the reduced sequence still
fails.  No minimality guarantee, but highly effective in practice: the
paper's bug #9 shrank from 61 operations (9 crashes, 226 KiB written) to 6
operations (1 crash, 2 bytes) -- the benchmark
``benchmarks/test_sec43_minimization.py`` reproduces that experiment shape.

Determinism is a prerequisite (section 4.3): the failure predicate must be
a pure function of the sequence, which our harnesses guarantee by seeding
every source of randomness from the sequence itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .alphabet import Operation

FailsFn = Callable[[List[Operation]], bool]


@dataclass
class MinimizeStats:
    """Before/after measurements (the section 4.3 anecdote's shape)."""

    initial_ops: int = 0
    final_ops: int = 0
    initial_bytes_written: int = 0
    final_bytes_written: int = 0
    initial_crashes: int = 0
    final_crashes: int = 0
    candidates_tried: int = 0
    rounds: int = 0


def sequence_bytes(ops: Sequence[Operation]) -> int:
    """Total bytes of written payloads in a sequence (for reporting)."""
    total = 0
    for op in ops:
        if op.name == "Put" and len(op.args) >= 2 and isinstance(op.args[1], bytes):
            total += len(op.args[1])
        elif op.name == "BulkCreate" and op.args and isinstance(op.args[0], tuple):
            for item in op.args[0]:
                if (
                    isinstance(item, tuple)
                    and len(item) == 2
                    and isinstance(item[1], bytes)
                ):
                    total += len(item[1])
    return total


def sequence_crashes(ops: Sequence[Operation]) -> int:
    return sum(1 for op in ops if op.name in ("DirtyReboot", "Reboot"))


class Minimizer:
    """Shrinks a failing sequence while the failure predicate holds."""

    def __init__(self, fails: FailsFn, max_candidates: int = 5000) -> None:
        self._fails = fails
        self.max_candidates = max_candidates
        self.stats = MinimizeStats()

    def _try(self, candidate: List[Operation]) -> bool:
        if self.stats.candidates_tried >= self.max_candidates:
            return False
        self.stats.candidates_tried += 1
        return self._fails(candidate)

    def minimize(self, ops: Sequence[Operation]) -> List[Operation]:
        """Shrink ``ops``; the input must fail (asserted)."""
        current = list(ops)
        if not self._fails(current):
            raise ValueError("minimize called with a non-failing sequence")
        self.stats.initial_ops = len(current)
        self.stats.initial_bytes_written = sequence_bytes(current)
        self.stats.initial_crashes = sequence_crashes(current)
        changed = True
        while changed and self.stats.candidates_tried < self.max_candidates:
            self.stats.rounds += 1
            changed = False
            reduced = self._remove_chunks(current)
            if reduced is not None:
                current = reduced
                changed = True
            reduced = self._shrink_args(current)
            if reduced is not None:
                current = reduced
                changed = True
        self.stats.final_ops = len(current)
        self.stats.final_bytes_written = sequence_bytes(current)
        self.stats.final_crashes = sequence_crashes(current)
        return current

    # ------------------------------------------------------------------
    # reduction passes

    def _remove_chunks(self, ops: List[Operation]) -> Optional[List[Operation]]:
        """ddmin-style removal: halves, then quarters, ... then singles."""
        current = list(ops)
        improved = False
        chunk = max(1, len(current) // 2)
        while chunk >= 1:
            index = 0
            while index < len(current):
                candidate = current[:index] + current[index + chunk :]
                if candidate and self._try(candidate):
                    current = candidate
                    improved = True
                else:
                    index += chunk
            chunk //= 2
        return current if improved else None

    def _shrink_args(self, ops: List[Operation]) -> Optional[List[Operation]]:
        """Shrink each operation's arguments in place."""
        current = list(ops)
        improved = False
        for index in range(len(current)):
            op = current[index]
            for candidate_args in _arg_candidates(op.args):
                candidate = list(current)
                candidate[index] = Operation(op.name, candidate_args)
                if self._try(candidate):
                    current = candidate
                    improved = True
                    break
        return current if improved else None


def _arg_candidates(args: Tuple) -> List[Tuple]:
    """Simpler variants of an argument tuple, simplest first."""
    out: List[Tuple] = []
    for position, arg in enumerate(args):
        for simpler in _simpler_values(arg):
            candidate = list(args)
            candidate[position] = simpler
            out.append(tuple(candidate))
    return out


def _simpler_values(value) -> List:
    """Shrink one value toward the conventional minimum."""
    if isinstance(value, bool):
        return [False] if value else []
    if isinstance(value, int):
        if value == 0:
            return []
        return [0, value // 2] if abs(value) > 1 else [0]
    if isinstance(value, bytes):
        if not value:
            return []
        out = [b""]
        if len(value) > 1:
            out.append(value[: len(value) // 2])
        if any(b != 0 for b in value):
            out.append(bytes(len(value)))
        return out
    if value is None:
        return []
    if isinstance(value, tuple):
        out = []
        if value:
            out.append(())
            if len(value) > 1:
                out.append(value[: len(value) // 2])
        return out
    return []


def minimize(
    ops: Sequence[Operation], fails: FailsFn, max_candidates: int = 5000
) -> Tuple[List[Operation], MinimizeStats]:
    """Convenience wrapper: shrink and return (sequence, stats)."""
    minimizer = Minimizer(fails, max_candidates=max_candidates)
    reduced = minimizer.minimize(ops)
    return reduced, minimizer.stats
