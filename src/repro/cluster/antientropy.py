"""Merkle anti-entropy: proactive replica repair beyond read-repair.

PR 8's cluster heals divergence only through read-repair, so a key that
is never read again after a partition, a hint-buffer overflow, or a
quorum-failure hint revocation stays divergent *forever* -- the paper's
section 4.4 recovery obligation demands better.  This module closes the
gap with the classic Dynamo-style protocol:

* every replica maintains an incremental :class:`~repro.shardstore.
  merkle.MerkleMap` over its ``key -> record-digest`` map (updated on
  each conditional apply, rebuilt after a dirty restart);
* a background round picks one pair of reachable replicas on the
  router's op clock, compares tree roots, descends only into diverging
  subtrees, and repairs stale keys through the *existing* versioned
  conditional-apply path (newest version wins, tombstones included);
* per-round budgets bound the buckets descended and keys repaired, so
  sync can never starve foreground traffic;
* an explicit :meth:`AntiEntropyService.sync` against an unreachable
  peer raises a typed :class:`~repro.errors.AntiEntropyError`;
  background rounds just skip the pair and retry later.

Convergence is *checked*, not assumed: :meth:`roots_converged` groups
keys by their preference list and compares, per group, a Merkle root
computed by every live member over exactly that group's key domain.
All-equal group roots prove the live replicas hold byte-identical record
sets (up to digest collision) -- the ``anti-entropy`` campaign suite's
settlement gate, and the property the ``--no-anti-entropy`` negative
control proves is load-bearing.  (Whole-tree roots cannot converge
pairwise under partial replication -- each node legitimately holds a
different key subset -- which is why the gate is per placement group
while the pairwise *sync* still descends whole trees and filters to
shared placements at repair time.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import AntiEntropyError, NotFoundError, ShardStoreError
from repro.shardstore.merkle import MerkleMap, numeric_root
from repro.shardstore.observability.journal import digest_bytes, digest_keys

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (router imports us)
    from .router import ClusterNode, ClusterRouter

__all__ = ["AntiEntropyService", "DEFAULT_MAX_ROUNDS"]

#: Ceiling for :meth:`AntiEntropyService.run_until_converged`; generous --
#: a full pair cycle is ``C(n, 2)`` rounds and convergence needs at most
#: ``replication - 1`` cycles of budgeted progress.
DEFAULT_MAX_ROUNDS = 200


def _record_version(raw: Optional[bytes]) -> int:
    """The version framed in a replica record (-1 when absent)."""
    if raw is None or len(raw) < 9:
        return -1
    return int.from_bytes(raw[:8], "big")


class AntiEntropyService:
    """Per-replica Merkle trees plus the budgeted pairwise sync protocol.

    Owned by :class:`~repro.cluster.router.ClusterRouter`; the router
    calls :meth:`note_apply` / :meth:`note_remove` from every replica
    mutation path so the trees are exact mirrors of replica content, and
    :meth:`maybe_run` from its op clock so rounds are deterministic
    functions of the workload (never wall time).
    """

    def __init__(self, router: "ClusterRouter") -> None:
        self.router = router
        cfg = router.config
        self.enabled = cfg.anti_entropy
        self.interval = cfg.anti_entropy_interval
        self.max_buckets = cfg.anti_entropy_buckets
        self.max_repairs = cfg.anti_entropy_repairs
        self.trees: Dict[int, MerkleMap] = {}
        self._cursor = 0  # round-robin position over reachable pairs
        self._bucket_cursor = 0  # rotation offset into diverging buckets

    # ------------------------------------------------------------------
    # tree maintenance (called from the router's replica mutation paths)

    def register_node(self, node_id: int) -> None:
        self.trees[node_id] = MerkleMap()

    def drop_node(self, node_id: int) -> None:
        self.trees.pop(node_id, None)

    def note_apply(self, node_id: int, key: bytes, record: bytes) -> None:
        tree = self.trees.get(node_id)
        if tree is not None:
            tree.set(key, digest_bytes(record))

    def note_remove(self, node_id: int, key: bytes) -> None:
        tree = self.trees.get(node_id)
        if tree is not None:
            tree.remove(key)

    def rebuild(self, node_id: int) -> None:
        """Rebuild one replica's tree from its store (post-restart).

        A dirty restart loses un-drained writes, so the in-memory tree
        may be ahead of the recovered store; re-deriving it from what
        recovery actually produced is the only honest commitment.
        """
        tree = self.trees.get(node_id)
        cn = self.router.nodes.get(node_id)
        if tree is None or cn is None:
            return
        tree.clear()
        try:
            keys = cn.node.keys()
        except ShardStoreError:
            return
        for key in keys:
            try:
                tree.set(key, digest_bytes(cn.node.get(key)))
            except ShardStoreError:
                continue

    def root(self, node_id: int) -> str:
        """The whole-tree root of one replica (journal / gauge surface)."""
        return self.trees[node_id].root()

    def numeric_roots(self) -> Dict[int, int]:
        """Per-node 48-bit root prefixes for the /metrics gauge."""
        return {
            nid: numeric_root(tree.root())
            for nid, tree in sorted(self.trees.items())
            if nid in self.router.nodes and not self.router.nodes[nid].removed
        }

    # ------------------------------------------------------------------
    # pairwise sync

    def _reachable_pairs(self) -> List[Tuple[int, int]]:
        ids = [
            nid
            for nid, cn in sorted(self.router.nodes.items())
            if cn.reachable
        ]
        return [
            (a, b) for i, a in enumerate(ids) for b in ids[i + 1 :]
        ]

    def maybe_run(self) -> None:
        """Op-clock trigger: one budgeted round every ``interval`` ops."""
        if not self.enabled or self.interval <= 0:
            return
        if self.router._op_count % self.interval:
            return
        self.run_round()

    def run_round(self) -> Optional[Dict[str, Any]]:
        """One budgeted background round over the next reachable pair.

        Returns the round summary (also journaled), or ``None`` when
        fewer than two replicas are reachable.  Never raises for an
        unreachable peer -- the pair list is recomputed each round.
        """
        pairs = self._reachable_pairs()
        if not pairs:
            self.router.stats["anti_entropy_skips"] += 1
            return None
        pair = pairs[self._cursor % len(pairs)]
        self._cursor += 1
        return self._sync_pair(
            pair[0],
            pair[1],
            max_buckets=self.max_buckets,
            max_repairs=self.max_repairs,
        )

    def sync(self, node_a: int, node_b: int) -> Dict[str, Any]:
        """Explicitly sync one replica pair to completion (no budgets).

        Raises :class:`AntiEntropyError` when either peer is not
        reachable -- the typed contract for *requested* syncs; background
        rounds skip instead.
        """
        for nid in (node_a, node_b):
            cn = self.router.nodes.get(nid)
            if cn is None:
                raise AntiEntropyError(
                    f"anti-entropy peer {nid} is unknown",
                    peer=nid,
                    reason="unknown",
                )
            if not cn.reachable:
                raise AntiEntropyError(
                    f"anti-entropy peer {nid} is {cn.status()}",
                    peer=nid,
                    reason=cn.status(),
                )
        return self._sync_pair(node_a, node_b, max_buckets=None, max_repairs=None)

    def _sync_pair(
        self,
        node_a: int,
        node_b: int,
        *,
        max_buckets: Optional[int],
        max_repairs: Optional[int],
    ) -> Dict[str, Any]:
        stats = self.router.stats
        tree_a, tree_b = self.trees[node_a], self.trees[node_b]
        buckets, compared = tree_a.diff(tree_b)
        stats["anti_entropy_rounds"] += 1
        summary: Dict[str, Any] = {
            "pair": [node_a, node_b],
            "root_match": not buckets,
            "compared": compared,
            "diverging": len(buckets),
            "descended": 0,
            "repaired": 0,
        }
        if not buckets:
            stats["anti_entropy_root_matches"] += 1
            self.router._record("anti_entropy", **summary)
            return summary
        if max_buckets is not None:
            # Rotate the descent start each round: a pair can legitimately
            # hold permanently-diverging buckets (keys whose placement the
            # pair does not share), so always descending the first N would
            # starve the repairable tail behind them.
            # The offset advances by one (coprime with any list length),
            # so every diverging bucket is eventually descended no matter
            # how the list length interacts with the window size.
            start = self._bucket_cursor % len(buckets)
            self._bucket_cursor += 1
            buckets = (buckets[start:] + buckets[:start])[:max_buckets]
        repaired_keys: List[bytes] = []
        budget_spent = False
        for bucket in buckets:
            if budget_spent:
                break
            summary["descended"] += 1
            stats["anti_entropy_buckets"] += 1
            items_a = tree_a.bucket_items(bucket)
            items_b = tree_b.bucket_items(bucket)
            for key in sorted(set(items_a) | set(items_b)):
                if items_a.get(key) == items_b.get(key):
                    continue
                if max_repairs is not None and len(repaired_keys) >= max_repairs:
                    budget_spent = True
                    break
                placement = self.router._placement(key)
                if node_a not in placement or node_b not in placement:
                    # A stray copy outside the key's preference list is
                    # rebalancing's job, not anti-entropy's.
                    continue
                if self._repair_key(node_a, node_b, key):
                    repaired_keys.append(key)
        summary["repaired"] = len(repaired_keys)
        stats["anti_entropy_keys_repaired"] += len(repaired_keys)
        if repaired_keys:
            summary["repaired_keys"] = digest_keys(sorted(repaired_keys))
        self.router._record("anti_entropy", **summary)
        return summary

    def _read_raw(self, cn: "ClusterNode", key: bytes) -> Optional[bytes]:
        try:
            return cn.node.get(key)
        except NotFoundError:
            return None
        except ShardStoreError:
            self.router._note_failure(cn)
            return None

    def _repair_key(self, node_a: int, node_b: int, key: bytes) -> bool:
        """Copy the newest record of ``key`` onto the staler pair member.

        Goes through :meth:`ClusterRouter._replica_apply`, so the repair
        is exactly a conditional write: per-replica version monotonicity
        and acknowledged-write durability are preserved by construction.
        """
        cn_a = self.router.nodes[node_a]
        cn_b = self.router.nodes[node_b]
        raw_a = self._read_raw(cn_a, key)
        raw_b = self._read_raw(cn_b, key)
        ver_a, ver_b = _record_version(raw_a), _record_version(raw_b)
        if ver_a == ver_b:
            return False  # equal versions carry equal records
        src, dst = (
            (raw_a, cn_b) if ver_a > ver_b else (raw_b, cn_a)
        )
        if src is None:
            return False
        try:
            self.router._replica_apply(dst, 0, key, src)
        except ShardStoreError:
            self.router._note_failure(dst)
            return False
        return True

    def run_until_converged(
        self, max_rounds: int = DEFAULT_MAX_ROUNDS
    ) -> Dict[str, Any]:
        """Budgeted rounds until the placement-group roots converge.

        The convergence check runs once per full pair cycle (it is a
        whole-keyspace sweep; rounds are cheap).  Returns ``{"rounds",
        "converged"}``; callers gate on ``converged`` -- the settlement
        gate never trusts round counts alone.
        """
        rounds = 0
        snapshot = self.converged_snapshot()
        while not snapshot["converged"] and rounds < max_rounds:
            cycle = max(1, len(self._reachable_pairs()))
            for _ in range(min(cycle, max_rounds - rounds)):
                self.run_round()
                rounds += 1
            snapshot = self.converged_snapshot()
        return {"rounds": rounds, "converged": snapshot["converged"]}

    # ------------------------------------------------------------------
    # convergence proof (the settlement gate)

    def converged_snapshot(self) -> Dict[str, Any]:
        """Placement-group Merkle roots across all live replicas.

        Keys are grouped by preference list; each live group member
        computes a Merkle root over its records restricted to the
        group's key domain.  A group converged iff every member root is
        equal -- equal roots prove identical record sets.  Returns
        ``{"converged", "groups", "divergent", "keys"}``.
        """
        nodes = self.router.nodes
        groups: Dict[Tuple[int, ...], List[bytes]] = {}
        all_keys: set = set()
        for nid, tree in self.trees.items():
            cn = nodes.get(nid)
            if cn is None or cn.removed:
                continue
            all_keys.update(tree.keys())
        for key in all_keys:
            placement = tuple(self.router._placement(key))
            groups.setdefault(placement, []).append(key)
        divergent = 0
        for placement, keys in groups.items():
            live = [
                nid
                for nid in placement
                if nid in nodes and nodes[nid].reachable
            ]
            if len(live) < 2:
                continue  # nothing to compare; a lone replica is converged
            roots = set()
            for nid in live:
                tree = self.trees[nid]
                items = [
                    (key, tree.get(key) or "")
                    for key in keys
                    if tree.get(key) is not None
                ]
                roots.add(MerkleMap.from_items(items).root())
            if len(roots) > 1:
                divergent += 1
        return {
            "converged": divergent == 0,
            "groups": len(groups),
            "divergent": divergent,
            "keys": len(all_keys),
        }

    def roots_converged(self) -> bool:
        return bool(self.converged_snapshot()["converged"])

    def journal_roots(self) -> Dict[str, Any]:
        """Journal the convergence verdict plus every live replica root.

        This is the record the mined ``roots-converge-after-settle``
        invariant keys on: after a ``settle`` record, the next
        ``merkle_roots`` record must report ``converged=True``.
        """
        snapshot = self.converged_snapshot()
        roots = {
            str(nid): self.trees[nid].root()
            for nid, cn in sorted(self.router.nodes.items())
            if not cn.removed and nid in self.trees
        }
        self.router._record(
            "merkle_roots",
            converged=snapshot["converged"],
            groups=snapshot["groups"],
            divergent=snapshot["divergent"],
            nkeys=snapshot["keys"],
            roots=roots,
        )
        return {**snapshot, "roots": roots}
