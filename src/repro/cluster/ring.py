"""Consistent-hash placement ring for the cluster layer.

Placement must be *stable* under transient failures: a partitioned or
demoted node keeps its ring positions (writes it misses become hints, and
reads route around it), so read and write quorums always intersect on the
same preference list.  Only membership changes -- a node joining, leaving,
or being removed -- move ring points, and those are the events the router
pairs with an explicit rebalance sweep.

Everything is derived from SHA-256 over stable identifiers; there is no
RNG and no wall clock, so placement is identical across runs, processes
and worker counts (the campaign determinism contract).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Tuple

__all__ = ["HashRing"]

#: Virtual points per node.  Enough to spread small clusters evenly
#: without making preference-list walks long.
DEFAULT_VNODES = 16


def _point(data: bytes) -> int:
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over integer node ids with virtual nodes."""

    def __init__(self, node_ids: Tuple[int, ...] = (), *, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        self._points: List[int] = []  # sorted ring positions
        self._owners: List[int] = []  # node id owning the same-index point
        self._members: List[int] = []
        for node_id in node_ids:
            self.add_node(node_id)

    @property
    def members(self) -> List[int]:
        return list(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._members

    def _vnode_points(self, node_id: int) -> List[int]:
        return [
            _point(b"node-%d-vnode-%d" % (node_id, v))
            for v in range(self.vnodes)
        ]

    def add_node(self, node_id: int) -> None:
        if node_id in self._members:
            raise ValueError(f"node {node_id} already on the ring")
        for point in self._vnode_points(node_id):
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node_id)
        self._members.append(node_id)
        self._members.sort()

    def remove_node(self, node_id: int) -> None:
        if node_id not in self._members:
            raise ValueError(f"node {node_id} not on the ring")
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node_id
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]
        self._members.remove(node_id)

    def preference_list(self, key: bytes, n: int) -> List[int]:
        """The first ``n`` *distinct* nodes clockwise from ``key``'s point.

        Fewer than ``n`` members returns them all (the router degrades
        replication rather than refusing placement).
        """
        if not self._members:
            return []
        want = min(n, len(self._members))
        start = bisect.bisect_right(self._points, _point(key))
        out: List[int] = []
        for probe in range(len(self._points)):
            owner = self._owners[(start + probe) % len(self._points)]
            if owner not in out:
                out.append(owner)
                if len(out) == want:
                    break
        return out
