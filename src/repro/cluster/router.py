"""The cluster layer: N storage nodes behind a quorum-replication router.

This promotes PR 5's in-node replica shards into a real cluster
(ROADMAP item 1): :class:`ClusterRouter` places each key on a preference
list of ``replication`` nodes via a consistent-hash ring
(:class:`~repro.cluster.ring.HashRing`), writes to all of them, and
acknowledges at ``write_quorum`` -- surfacing a typed
:class:`~repro.errors.DegradedWriteError` when the quorum is unreachable
instead of blocking.  Reads gather ``read_quorum`` replies, return the
newest version, and (when enabled) *read-repair* stale replicas in place.
Writes that miss a down/partitioned/demoted replica queue a bounded
*hinted handoff* that replays when the node returns; overflowing the hint
buffer is expected under long outages and is exactly the divergence the
read-repair sweep must converge (the ``--no-read-repair`` negative
control proves this is load-bearing).  Keys that are never read again
cannot be healed by read-repair at all; enabling ``anti_entropy`` adds
the budgeted background Merkle sync of
:mod:`repro.cluster.antientropy`, whose placement-group root comparison
turns "replicas converged" into a provable settlement gate.

Replica records are version-framed (``8-byte version | flag | payload``)
so replicas are order-insensitive: a replica only applies a record newer
than what it holds, quorum reads pick the maximum version, and a
tombstone is just a versioned record with the delete flag.  Version
assignment is the linearization point; ``write_quorum + read_quorum >
replication`` and ``2 * write_quorum > replication`` are enforced so any
read quorum intersects the last acknowledged write quorum and any two
write quorums intersect.

Consistency is *checked*, not assumed, on three independent planes:

* the ``cluster`` campaign suite replays conformance PBT through the
  router under node-granularity storms (:mod:`repro.campaign.cluster`);
* every node journals with a distinct identity and the router journals
  cluster-level ops (with replica ack sets); the merged journals replay
  offline under cross-node candidate-set semantics
  (:mod:`repro.evidence.cluster`);
* the deterministic scheduler + linearizability checker model-check the
  quorum/read-repair interleavings
  (:func:`repro.core.concurrent_harnesses.quorum_harness`).

Acknowledged-write durability: with ``durable_writes`` (the default) a
replica ack implies the write was drained to the medium, so a quorum-
acknowledged write survives the crash/dirty-restart of any minority of
nodes -- the property the campaign settlement gate and the satellite
property test assert.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.concurrency.primitives import Mutex
from repro.errors import (
    DeadlineExceededError,
    DegradedReadError,
    DegradedWriteError,
    InvalidRequestError,
    KeyNotFoundError,
    NotFoundError,
    OverloadedError,
    ShardStoreError,
)
from repro.shardstore.config import StoreConfig
from repro.shardstore.disk import DiskGeometry
from repro.shardstore.errors import validate_key
from repro.shardstore.injection import (
    FAULT_NODE_CRASH,
    FAULT_NODE_RESTART,
    FAULT_NODE_SLOW,
    FAULT_PARTITION,
    FAULT_PARTITION_HEAL,
    PlannedFault,
)
from repro.shardstore.observability.journal import (
    Journal,
    classify_error,
    digest_bytes,
    digest_keys,
)
from repro.shardstore.resilience import AdmissionConfig
from repro.shardstore.rpc import StorageNode

from .antientropy import AntiEntropyService
from .ring import HashRing

__all__ = [
    "FLAG_TOMBSTONE",
    "FLAG_VALUE",
    "ClusterConfig",
    "ClusterNode",
    "ClusterRouter",
    "decode_record",
    "encode_record",
]

#: Replica record flags (one byte after the 8-byte version).
FLAG_VALUE = 0
FLAG_TOMBSTONE = 1

#: Read-only key the router probes demoted nodes with.
PROBE_KEY = b"__cluster_probe__"


def encode_record(version: int, flag: int, payload: bytes) -> bytes:
    """Frame a replica record: big-endian version, flag byte, payload."""
    if version < 0:
        raise ValueError("version must be non-negative")
    return version.to_bytes(8, "big") + bytes([flag]) + payload


def decode_record(raw: bytes) -> Tuple[int, int, bytes]:
    """Split a replica record into ``(version, flag, payload)``."""
    if len(raw) < 9:
        raise ValueError("replica record too short")
    return int.from_bytes(raw[:8], "big"), raw[8], raw[9:]


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster topology and quorum knobs.

    The quorum constraints (validated in ``__post_init__``) are the whole
    consistency argument: ``write_quorum + read_quorum > replication``
    makes every read quorum intersect the last acknowledged write quorum,
    and ``2 * write_quorum > replication`` makes any two write quorums
    intersect (so versions observed by quorum reads are monotone).
    """

    num_nodes: int = 5
    disks_per_node: int = 2
    replication: int = 3
    write_quorum: int = 2
    read_quorum: int = 2
    read_repair: bool = True
    durable_writes: bool = True
    hint_limit: int = 8
    vnodes: int = 16
    seed: int = 0
    demote_threshold: int = 4
    probe_interval: int = 16
    admission: Optional[AdmissionConfig] = None
    geometry: Optional[DiskGeometry] = None
    #: Background Merkle anti-entropy (off by default: the ``cluster``
    #: campaign suite keeps read-repair as its sole healer so the
    #: ``--no-read-repair`` negative control stays load-bearing; the
    #: ``anti-entropy`` suite and the serving demo opt in explicitly).
    anti_entropy: bool = False
    #: Router ops between background sync rounds (0 = manual only).
    anti_entropy_interval: int = 8
    #: Max diverging leaf buckets one background round descends into.
    anti_entropy_buckets: int = 8
    #: Max keys one background round repairs.
    anti_entropy_repairs: int = 16

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise InvalidRequestError("cluster needs at least one node")
        if not 1 <= self.replication <= self.num_nodes:
            raise InvalidRequestError(
                "replication must be between 1 and num_nodes"
            )
        if not 1 <= self.write_quorum <= self.replication:
            raise InvalidRequestError(
                "write_quorum must be between 1 and replication"
            )
        if not 1 <= self.read_quorum <= self.replication:
            raise InvalidRequestError(
                "read_quorum must be between 1 and replication"
            )
        if self.write_quorum + self.read_quorum <= self.replication:
            raise InvalidRequestError(
                "write_quorum + read_quorum must exceed replication "
                "(read/write quorums must intersect)"
            )
        if 2 * self.write_quorum <= self.replication:
            raise InvalidRequestError(
                "2 * write_quorum must exceed replication "
                "(write quorums must intersect)"
            )
        if self.hint_limit < 0:
            raise InvalidRequestError("hint_limit must be non-negative")
        if self.anti_entropy_interval < 0:
            raise InvalidRequestError(
                "anti_entropy_interval must be non-negative"
            )
        if self.anti_entropy_buckets < 1 or self.anti_entropy_repairs < 1:
            raise InvalidRequestError(
                "anti-entropy per-round budgets must be positive"
            )


class ClusterNode:
    """One member: a :class:`StorageNode` plus its cluster-side state."""

    def __init__(
        self, node_id: int, node: StorageNode, journal: Optional[Journal]
    ) -> None:
        self.node_id = node_id
        self.node = node
        self.journal = journal
        self.up = True
        self.partitioned = False
        self.demoted = False
        self.removed = False
        self.failures = 0  # consecutive replica-side errors
        self.probe_at = 0  # op-clock time of the next readmission probe
        # Serializes the read-version/conditional-write pair on this
        # replica; under the deterministic scheduler this is what makes
        # concurrent quorum writes version-monotone per replica.
        self.lock: Mutex = Mutex(None, name=f"cluster-node-{node_id}")

    @property
    def reachable(self) -> bool:
        return (
            self.up
            and not self.partitioned
            and not self.demoted
            and not self.removed
        )

    def status(self) -> str:
        if self.removed:
            return "removed"
        if not self.up:
            return "crashed"
        if self.partitioned:
            return "partitioned"
        if self.demoted:
            return "demoted"
        return "up"


class ClusterRouter:
    """Quorum-replicating coordinator over N storage nodes.

    ``journal_factory(identity, meta)`` (optional) builds one evidence
    journal per member plus one for the router itself; each journal
    carries its ``identity`` in the chain genesis and every record body,
    so the merged multi-journal checker can attribute records without
    op-id collisions.  The router journal's genesis meta carries the
    quorum configuration the offline checker replays under.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        *,
        journal_factory: Optional[
            Callable[[str, Dict[str, Any]], Journal]
        ] = None,
        recorder: Any = None,
    ) -> None:
        self.config = config or ClusterConfig()
        self._journal_factory = journal_factory
        self._recorder = recorder
        self.journal: Optional[Journal] = None
        if journal_factory is not None:
            self.journal = journal_factory("router", self._genesis_meta())
        self.nodes: Dict[int, ClusterNode] = {}
        self.ring = HashRing(vnodes=self.config.vnodes)
        self._next_node_id = 0
        self._version = 0  # per-key record versions (globally monotone)
        self._cop = 0  # cluster op ids (the router journal's op space)
        self._op_count = 0  # router op clock (probe scheduling)
        self._rebalancing = False  # reentrancy guard (demote mid-rebalance)
        self._hints: Dict[int, "OrderedDict[bytes, bytes]"] = {}
        self.stats: Dict[str, int] = {
            name: 0
            for name in (
                "puts",
                "gets",
                "deletes",
                "contains",
                "degraded_writes",
                "quorum_write_failures",
                "quorum_read_failures",
                "read_repairs",
                "hints_queued",
                "hints_dropped",
                "hints_replayed",
                "hints_revoked",
                "replica_errors",
                "replica_sheds",
                "node_crashes",
                "node_restarts",
                "partitions",
                "partition_heals",
                "slow_storms",
                "node_demotions",
                "node_readmissions",
                "node_joins",
                "node_leaves",
                "rebalances",
                "rebalance_moves",
                "anti_entropy_rounds",
                "anti_entropy_root_matches",
                "anti_entropy_buckets",
                "anti_entropy_keys_repaired",
                "anti_entropy_skips",
            )
        }
        #: Per-node hinted-handoff attribution (satellite counters): a
        #: dropped or revoked hint is a write some replica will never
        #: see by handoff -- exactly the divergence anti-entropy must
        #: catch -- so it is surfaced per node, not just in aggregate.
        self.hint_stats: Dict[int, Dict[str, int]] = {}
        self.antientropy = AntiEntropyService(self)
        for _ in range(self.config.num_nodes):
            self._build_node()

    # ------------------------------------------------------------------
    # membership

    def _genesis_meta(self) -> Dict[str, Any]:
        cfg = self.config
        return {
            "role": "router",
            "nodes": cfg.num_nodes,
            "replication": cfg.replication,
            "write_quorum": cfg.write_quorum,
            "read_quorum": cfg.read_quorum,
            "read_repair": cfg.read_repair,
            "durable_writes": cfg.durable_writes,
        }

    def _build_node(self) -> int:
        node_id = self._next_node_id
        self._next_node_id += 1
        identity = f"node{node_id}"
        journal = (
            self._journal_factory(identity, {"role": "member"})
            if self._journal_factory is not None
            else None
        )
        kwargs: Dict[str, Any] = {
            "geometry": self.config.geometry or DiskGeometry(),
            "seed": self.config.seed + 101 * (node_id + 1),
            "journal": journal,
        }
        if self._recorder is not None:
            kwargs["recorder"] = self._recorder
        cfg = StoreConfig(**kwargs)
        node = StorageNode(
            num_disks=self.config.disks_per_node,
            config=cfg,
            admission=self.config.admission,
        )
        self.nodes[node_id] = ClusterNode(node_id, node, journal)
        self.ring.add_node(node_id)
        self._hints[node_id] = OrderedDict()
        self.hint_stats[node_id] = {
            "queued": 0, "dropped": 0, "replayed": 0, "revoked": 0
        }
        self.antientropy.register_node(node_id)
        return node_id

    def add_node(self) -> int:
        """Join a fresh node and rebalance placement onto it."""
        node_id = self._build_node()
        self.stats["node_joins"] += 1
        self._record("join", target=node_id)
        self.rebalance()
        return node_id

    def remove_node(self, node_id: int) -> None:
        """Remove a member and rebalance its placement away."""
        cn = self._member(node_id)
        cn.removed = True
        self.ring.remove_node(node_id)
        dropped = len(self._hints.get(node_id, ()))
        if dropped:
            self.stats["hints_dropped"] += dropped
            self.hint_stats[node_id]["dropped"] += dropped
        self._hints[node_id] = OrderedDict()
        self.antientropy.drop_node(node_id)
        self.stats["node_leaves"] += 1
        self._record("leave", target=node_id)
        self.rebalance()

    def _member(self, node_id: int) -> ClusterNode:
        if node_id not in self.nodes:
            raise InvalidRequestError(f"unknown node {node_id}")
        return self.nodes[node_id]

    @property
    def members(self) -> List[int]:
        return [nid for nid, cn in sorted(self.nodes.items()) if not cn.removed]

    def _placement(self, key: bytes) -> List[int]:
        return self.ring.preference_list(key, self.config.replication)

    # ------------------------------------------------------------------
    # journal plumbing

    def _record(self, kind: str, **fields: Any) -> None:
        if self.journal is not None:
            self.journal.record_op(kind, **fields)

    def _begin(self, kind: str, **kwargs: Any) -> Optional[Dict[str, Any]]:
        if self.journal is None:
            return None
        return self.journal.begin_op(kind, **kwargs)

    def _end(
        self, handle: Optional[Dict[str, Any]], out: str, **fields: Any
    ) -> None:
        if self.journal is not None:
            self.journal.end_op(handle, out, **fields)

    # ------------------------------------------------------------------
    # clocks and probes

    def _tick(self) -> None:
        self._op_count += 1
        self._probe_demoted()
        self.antientropy.maybe_run()

    def _next_cop(self) -> int:
        self._cop += 1
        return self._cop

    def _next_version(self) -> int:
        self._version += 1
        return self._version

    def _probe_demoted(self) -> None:
        for cn in self.nodes.values():
            if not cn.demoted or cn.removed or not cn.up or cn.partitioned:
                continue
            if self._op_count < cn.probe_at:
                continue
            try:
                cn.node.contains(PROBE_KEY)
            except ShardStoreError:
                cn.probe_at = self._op_count + self.config.probe_interval
                continue
            self._readmit(cn)

    def _readmit(self, cn: ClusterNode) -> None:
        cn.demoted = False
        cn.failures = 0
        self.stats["node_readmissions"] += 1
        self._record("readmit", target=cn.node_id)
        self._replay_hints(cn.node_id)
        self.rebalance()

    def _note_failure(self, cn: ClusterNode) -> None:
        self.stats["replica_errors"] += 1
        cn.failures += 1
        if (
            not cn.demoted
            and cn.failures >= self.config.demote_threshold
        ):
            cn.demoted = True
            cn.probe_at = self._op_count + self.config.probe_interval
            self.stats["node_demotions"] += 1
            self._record("demote", target=cn.node_id)
            self.rebalance()

    # ------------------------------------------------------------------
    # hinted handoff

    def _queue_hint(self, node_id: int, key: bytes, record: bytes) -> None:
        if self.config.hint_limit == 0:
            self.stats["hints_dropped"] += 1
            self.hint_stats[node_id]["dropped"] += 1
            return
        hints = self._hints[node_id]
        if key in hints:
            del hints[key]
        elif len(hints) >= self.config.hint_limit:
            hints.popitem(last=False)
            self.stats["hints_dropped"] += 1
            self.hint_stats[node_id]["dropped"] += 1
        hints[key] = record
        self.stats["hints_queued"] += 1
        self.hint_stats[node_id]["queued"] += 1

    def _revoke_hints(self, node_ids: List[int], key: bytes) -> None:
        """Drop hints queued by a write that failed its quorum.

        Hinted handoff guarantees *acknowledged* writes reach every
        replica; replaying an unacknowledged write later would resurrect
        an operation its client was told failed.
        """
        for node_id in node_ids:
            hints = self._hints.get(node_id)
            if hints is not None and key in hints:
                del hints[key]
                self.stats["hints_revoked"] += 1
                self.hint_stats[node_id]["revoked"] += 1

    def _replay_hints(self, node_id: int) -> None:
        cn = self.nodes[node_id]
        if not cn.reachable:
            return
        hints = self._hints[node_id]
        if not hints:
            return
        self._hints[node_id] = OrderedDict()
        replayed = 0
        for key, record in hints.items():
            try:
                self._replica_apply(cn, 0, key, record)
                replayed += 1
            except ShardStoreError:
                self._note_failure(cn)
        self.stats["hints_replayed"] += replayed
        self.hint_stats[node_id]["replayed"] += replayed
        self._record("hint_replay", target=node_id, count=replayed)

    def hints_pending(self, node_id: int) -> int:
        return len(self._hints.get(node_id, ()))

    # ------------------------------------------------------------------
    # replica IO

    def _replica_apply(
        self, cn: ClusterNode, cop: int, key: bytes, record: bytes
    ) -> None:
        """Conditionally apply ``record`` on one replica (newer wins).

        The version check and the write are serialized per replica, which
        keeps replica versions monotone under concurrent quorum writes --
        the property the model-check harness exercises.  With
        ``durable_writes`` the ack implies a drain, so acknowledged data
        survives a dirty restart.
        """
        version = int.from_bytes(record[:8], "big")
        cn.lock.acquire()
        try:
            try:
                current, _, _ = decode_record(cn.node.get(key))
            except NotFoundError:
                current = -1
            if current >= version:
                return
            if cn.journal is not None and cop:
                cn.journal.annotate(cop=cop)
            cn.node.put(key, record)
            # Mirror the apply into the replica's Merkle tree before the
            # drain: the record is on the node either way, and a drain
            # failure is followed by a dirty restart, which rebuilds.
            self.antientropy.note_apply(cn.node_id, key, record)
            if self.config.durable_writes:
                cn.node.drain()
        finally:
            cn.lock.release()

    def _quorum_write(
        self, cop: int, key: bytes, record: bytes
    ) -> Tuple[List[int], List[int]]:
        """Write ``record`` to the preference list; returns (acks, hinted)."""
        acks: List[int] = []
        hinted: List[int] = []
        for node_id in self._placement(key):
            cn = self.nodes[node_id]
            if not cn.reachable:
                self._queue_hint(node_id, key, record)
                hinted.append(node_id)
                continue
            try:
                self._replica_apply(cn, cop, key, record)
            except (OverloadedError, DeadlineExceededError):
                self.stats["replica_sheds"] += 1
                self._queue_hint(node_id, key, record)
                hinted.append(node_id)
            except ShardStoreError:
                self._note_failure(cn)
                self._queue_hint(node_id, key, record)
                hinted.append(node_id)
            else:
                cn.failures = 0
                acks.append(node_id)
        return acks, hinted

    def _quorum_read(
        self, key: bytes
    ) -> List[Tuple[int, int, int, bytes, Optional[bytes]]]:
        """Read ``key`` from every reachable preference replica.

        Each reply is ``(node_id, version, flag, payload, raw)``; a
        replica that answers "absent" replies with version -1 (that is an
        answer, and counts toward the read quorum).
        """
        replies: List[Tuple[int, int, int, bytes, Optional[bytes]]] = []
        for node_id in self._placement(key):
            cn = self.nodes[node_id]
            if not cn.reachable:
                continue
            try:
                raw = cn.node.get(key)
            except NotFoundError:
                replies.append((node_id, -1, FLAG_TOMBSTONE, b"", None))
                cn.failures = 0
            except (OverloadedError, DeadlineExceededError):
                self.stats["replica_sheds"] += 1
            except ShardStoreError:
                self._note_failure(cn)
            else:
                version, flag, payload = decode_record(raw)
                replies.append((node_id, version, flag, payload, raw))
                cn.failures = 0
        return replies

    def _read_repair(
        self,
        cop: int,
        key: bytes,
        replies: List[Tuple[int, int, int, bytes, Optional[bytes]]],
        newest: Tuple[int, int, int, bytes, Optional[bytes]],
    ) -> None:
        if not self.config.read_repair or newest[4] is None:
            return
        for node_id, version, _, _, _ in replies:
            if version >= newest[1]:
                continue
            cn = self.nodes[node_id]
            try:
                self._replica_apply(cn, cop, key, newest[4])
            except ShardStoreError:
                self._note_failure(cn)
                continue
            self.stats["read_repairs"] += 1
            self._record(
                "read_repair", key=key, target=node_id, ver=newest[1]
            )

    # ------------------------------------------------------------------
    # client API (the KVNode surface, replicated)

    def put(
        self, key: bytes, value: bytes, *, deadline: Optional[int] = None
    ) -> None:
        validate_key(key)
        if not isinstance(value, bytes):
            raise InvalidRequestError(
                f"value must be bytes, got {type(value).__name__}"
            )
        self._tick()
        self.stats["puts"] += 1
        cop = self._next_cop()
        version = self._next_version()
        record = encode_record(version, FLAG_VALUE, value)
        handle = self._begin(
            "put", key=key, value=record, fields={"cop": cop, "ver": version}
        )
        acks, hinted = self._quorum_write(cop, key, record)
        want = self.config.write_quorum
        if len(acks) >= want:
            if len(acks) < len(self._placement(key)):
                self.stats["degraded_writes"] += 1
            self._end(handle, "ok", acks=acks, want=want)
            return
        self._revoke_hints(hinted, key)
        self.stats["quorum_write_failures"] += 1
        exc = DegradedWriteError(
            f"write reached {len(acks)}/{want} replicas",
            acks=len(acks),
            required=want,
        )
        self._end(handle, classify_error(exc), acks=acks, want=want)
        raise exc

    def get(self, key: bytes, *, deadline: Optional[int] = None) -> bytes:
        validate_key(key)
        self._tick()
        self.stats["gets"] += 1
        cop = self._next_cop()
        handle = self._begin("get", key=key, fields={"cop": cop})
        replies = self._quorum_read(key)
        want = self.config.read_quorum
        if len(replies) < want:
            self.stats["quorum_read_failures"] += 1
            exc = DegradedReadError(
                f"read reached {len(replies)}/{want} replicas",
                replies=len(replies),
                required=want,
                candidates=[(r[0], r[1]) for r in replies],
            )
            self._end(
                handle, classify_error(exc), replies=[r[0] for r in replies]
            )
            raise exc
        newest = max(replies, key=lambda r: r[1])
        self._read_repair(cop, key, replies, newest)
        if newest[1] < 0 or newest[2] == FLAG_TOMBSTONE:
            exc2 = KeyNotFoundError(f"key not found: {key!r}")
            self._end(handle, classify_error(exc2), replies=[r[0] for r in replies])
            raise exc2
        self._end(
            handle,
            "ok",
            value=digest_bytes(newest[4] or b""),
            ver=newest[1],
            replies=[r[0] for r in replies],
        )
        return newest[3]

    def delete(self, key: bytes, *, deadline: Optional[int] = None) -> None:
        validate_key(key)
        self._tick()
        self.stats["deletes"] += 1
        cop = self._next_cop()
        handle = self._begin("delete", key=key, fields={"cop": cop})
        replies = self._quorum_read(key)
        want_r = self.config.read_quorum
        if len(replies) < want_r:
            self.stats["quorum_read_failures"] += 1
            exc = DegradedReadError(
                f"read reached {len(replies)}/{want_r} replicas",
                replies=len(replies),
                required=want_r,
                candidates=[(r[0], r[1]) for r in replies],
            )
            self._end(handle, classify_error(exc))
            raise exc
        newest = max(replies, key=lambda r: r[1])
        if newest[1] < 0 or newest[2] == FLAG_TOMBSTONE:
            exc2 = KeyNotFoundError(f"key not found: {key!r}")
            self._end(handle, classify_error(exc2))
            raise exc2
        version = self._next_version()
        record = encode_record(version, FLAG_TOMBSTONE, b"")
        acks, hinted = self._quorum_write(cop, key, record)
        want = self.config.write_quorum
        if len(acks) >= want:
            self._end(handle, "ok", acks=acks, want=want, ver=version)
            return
        self._revoke_hints(hinted, key)
        self.stats["quorum_write_failures"] += 1
        exc3 = DegradedWriteError(
            f"delete reached {len(acks)}/{want} replicas",
            acks=len(acks),
            required=want,
        )
        self._end(handle, classify_error(exc3), acks=acks, want=want, ver=version)
        raise exc3

    def contains(self, key: bytes) -> bool:
        validate_key(key)
        self._tick()
        self.stats["contains"] += 1
        cop = self._next_cop()
        handle = self._begin("contains", key=key, fields={"cop": cop})
        replies = self._quorum_read(key)
        want = self.config.read_quorum
        if len(replies) < want:
            self.stats["quorum_read_failures"] += 1
            exc = DegradedReadError(
                f"read reached {len(replies)}/{want} replicas",
                replies=len(replies),
                required=want,
                candidates=[(r[0], r[1]) for r in replies],
            )
            self._end(handle, classify_error(exc))
            raise exc
        newest = max(replies, key=lambda r: r[1])
        self._read_repair(cop, key, replies, newest)
        exists = newest[1] >= 0 and newest[2] != FLAG_TOMBSTONE
        self._end(handle, "ok", exists=exists)
        return exists

    def keys(self) -> List[bytes]:
        """Every key visible through a quorum read, sorted."""
        self._tick()
        candidates: set = set()
        for cn in self.nodes.values():
            if not cn.reachable:
                continue
            try:
                candidates.update(cn.node.keys())
            except ShardStoreError:
                self._note_failure(cn)
        out: List[bytes] = []
        for key in sorted(candidates):
            if key == PROBE_KEY:
                continue
            replies = self._quorum_read(key)
            if len(replies) < self.config.read_quorum:
                continue
            newest = max(replies, key=lambda r: r[1])
            if newest[1] >= 0 and newest[2] != FLAG_TOMBSTONE:
                out.append(key)
        if self.journal is not None:
            self.journal.record_op(
                "keys", out="ok", count=len(out), keyset=digest_keys(out)
            )
        return out

    # ------------------------------------------------------------------
    # node-granularity fault plane

    def apply_fault(self, fault: PlannedFault) -> None:
        """Apply one node-level planned fault (``disk`` is the node id)."""
        if fault.kind == FAULT_NODE_CRASH:
            self.crash_node(fault.disk)
        elif fault.kind == FAULT_NODE_RESTART:
            self.restart_node(fault.disk)
        elif fault.kind == FAULT_PARTITION:
            self.partition_node(fault.disk)
        elif fault.kind == FAULT_PARTITION_HEAL:
            self.heal_partition(fault.disk)
        elif fault.kind == FAULT_NODE_SLOW:
            self.slow_node(fault.disk, fault.arg)
        else:
            raise InvalidRequestError(
                f"not a cluster fault kind: {fault.kind!r}"
            )

    def crash_node(self, node_id: int) -> None:
        cn = self._member(node_id)
        if not cn.up:
            return
        cn.up = False
        self.stats["node_crashes"] += 1
        self._record("crash", target=node_id)

    def restart_node(self, node_id: int) -> None:
        """Dirty-restart a crashed node: un-drained writes are lost."""
        cn = self._member(node_id)
        if cn.up:
            return
        for system in cn.node.systems:
            try:
                system.dirty_reboot()
            except ShardStoreError:
                pass
        cn.up = True
        cn.failures = 0
        self.stats["node_restarts"] += 1
        self._record("restart", target=node_id)
        # A dirty restart may have lost un-drained writes; re-derive the
        # replica's Merkle tree from what recovery actually produced
        # (hint replay below re-applies through the tracked path).
        self.antientropy.rebuild(node_id)
        self._replay_hints(node_id)

    def partition_node(self, node_id: int) -> None:
        cn = self._member(node_id)
        if cn.partitioned:
            return
        cn.partitioned = True
        self.stats["partitions"] += 1
        self._record("partition", target=node_id)

    def heal_partition(self, node_id: int) -> None:
        cn = self._member(node_id)
        if not cn.partitioned:
            return
        cn.partitioned = False
        cn.failures = 0
        self.stats["partition_heals"] += 1
        self._record("partition_heal", target=node_id)
        self._replay_hints(node_id)

    def slow_node(self, node_id: int, held_arrivals: int) -> None:
        """A gray node: hold arrivals so its admission queue sheds."""
        cn = self._member(node_id)
        self.stats["slow_storms"] += 1
        self._record("slow", target=node_id, arg=held_arrivals)
        if self.config.admission is not None:
            cn.node.hold_arrivals(held_arrivals)

    def settle(self) -> None:
        """Return the cluster to full health: heal partitions, restart
        crashed nodes, readmit demoted ones, replay every pending hint.

        Journals a ``settle`` record -- the anchor for the mined
        ``roots-converge-after-settle`` invariant (the next
        ``merkle_roots`` record after a settle must report convergence).
        """
        for node_id, cn in sorted(self.nodes.items()):
            if cn.removed:
                continue
            if cn.partitioned:
                self.heal_partition(node_id)
            if not cn.up:
                self.restart_node(node_id)
            if cn.demoted:
                self._readmit(cn)
            self._replay_hints(node_id)
        self._record("settle")

    # ------------------------------------------------------------------
    # rebalancing

    def rebalance(self) -> int:
        """Converge placement: copy each key's newest record onto every
        reachable preference replica and drop stray copies elsewhere.

        Runs after membership changes (join/leave) and breaker demotions /
        readmissions.  Returns the number of records moved or dropped.
        """
        if self._rebalancing:
            return 0
        self._rebalancing = True
        try:
            return self._rebalance()
        finally:
            self._rebalancing = False

    def _rebalance(self) -> int:
        reachable = {
            nid: cn for nid, cn in self.nodes.items() if cn.reachable
        }
        keys: set = set()
        for cn in reachable.values():
            try:
                keys.update(cn.node.keys())
            except ShardStoreError:
                continue
        keys.discard(PROBE_KEY)
        moves = 0
        for key in sorted(keys):
            best: Optional[bytes] = None
            best_version = -1
            holders: Dict[int, int] = {}
            for nid, cn in reachable.items():
                try:
                    raw = cn.node.get(key)
                except NotFoundError:
                    continue
                except ShardStoreError:
                    continue
                version, _, _ = decode_record(raw)
                holders[nid] = version
                if version > best_version:
                    best_version = version
                    best = raw
            if best is None:
                continue
            prefs = self._placement(key)
            for nid in prefs:
                cn = reachable.get(nid)
                if cn is None:
                    continue
                if holders.get(nid, -1) < best_version:
                    try:
                        self._replica_apply(cn, 0, key, best)
                        moves += 1
                    except ShardStoreError:
                        self._note_failure(cn)
            for nid in holders:
                if nid in prefs:
                    continue
                try:
                    reachable[nid].node.delete(key)
                    self.antientropy.note_remove(nid, key)
                    moves += 1
                except ShardStoreError:
                    continue
        self.stats["rebalances"] += 1
        self.stats["rebalance_moves"] += moves
        self._record("rebalance", moves=moves)
        return moves

    # ------------------------------------------------------------------
    # replica inspection (used by the settlement convergence gate)

    def replica_states(
        self, key: bytes
    ) -> Dict[int, Optional[Tuple[int, int, bytes]]]:
        """Raw decoded record per preference replica (None = absent).

        Bypasses quorum logic -- this is the campaign's convergence
        oracle, not a client API.
        """
        out: Dict[int, Optional[Tuple[int, int, bytes]]] = {}
        for node_id in self._placement(key):
            cn = self.nodes[node_id]
            try:
                out[node_id] = decode_record(cn.node.get(key))
            except NotFoundError:
                out[node_id] = None
            except ShardStoreError:
                out[node_id] = None
        return out

    # ------------------------------------------------------------------
    # health

    def quorum_health(self) -> Dict[str, Any]:
        cfg = self.config
        reachable = sum(1 for cn in self.nodes.values() if cn.reachable)
        active = len(self.members)
        return {
            "nodes": active,
            "reachable": reachable,
            "replication": cfg.replication,
            "write_quorum": cfg.write_quorum,
            "read_quorum": cfg.read_quorum,
            "quorum_ok": reachable >= max(cfg.write_quorum, cfg.read_quorum),
            "below_replication": reachable < cfg.replication,
            "degraded": any(
                not cn.reachable and not cn.removed
                for cn in self.nodes.values()
            ),
        }

    def health_snapshot(self) -> Dict[str, Any]:
        nodes: Dict[str, Any] = {}
        for node_id, cn in sorted(self.nodes.items()):
            if cn.removed:
                continue
            nodes[str(node_id)] = {
                "status": cn.status(),
                "reachable": cn.reachable,
                "hints_pending": self.hints_pending(node_id),
                "hints_dropped": self.hint_stats[node_id]["dropped"],
                "hints_revoked": self.hint_stats[node_id]["revoked"],
                "failures": cn.failures,
            }
        return {
            "cluster": self.quorum_health(),
            "nodes": nodes,
            "counters": dict(self.stats),
            "anti_entropy": {
                "enabled": self.antientropy.enabled,
                "rounds": self.stats["anti_entropy_rounds"],
                "keys_repaired": self.stats["anti_entropy_keys_repaired"],
            },
        }

    def close(self) -> Dict[str, str]:
        """Seal every journal; returns identity -> chain head."""
        heads: Dict[str, str] = {}
        if self.journal is not None:
            heads["router"] = self.journal.close()
        for node_id, cn in sorted(self.nodes.items()):
            if cn.journal is not None:
                heads[f"node{node_id}"] = cn.journal.close()
        return heads
