"""Fault-tolerant multi-node cluster layer (quorum replication).

See :mod:`repro.cluster.router` for the consistency argument and the
three planes that check it (campaign PBT, merged-journal trace replay,
deterministic model checking).
"""

from .ring import HashRing
from .router import (
    FLAG_TOMBSTONE,
    FLAG_VALUE,
    ClusterConfig,
    ClusterNode,
    ClusterRouter,
    decode_record,
    encode_record,
)

__all__ = [
    "HashRing",
    "FLAG_TOMBSTONE",
    "FLAG_VALUE",
    "ClusterConfig",
    "ClusterNode",
    "ClusterRouter",
    "decode_record",
    "encode_record",
]
