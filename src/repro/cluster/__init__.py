"""Fault-tolerant multi-node cluster layer (quorum replication).

See :mod:`repro.cluster.router` for the consistency argument and the
three planes that check it (campaign PBT, merged-journal trace replay,
deterministic model checking), and :mod:`repro.cluster.antientropy` for
the Merkle anti-entropy protocol that heals divergence read-repair
cannot reach.
"""

from .antientropy import AntiEntropyService
from .ring import HashRing
from .router import (
    FLAG_TOMBSTONE,
    FLAG_VALUE,
    ClusterConfig,
    ClusterNode,
    ClusterRouter,
    decode_record,
    encode_record,
)

__all__ = [
    "AntiEntropyService",
    "HashRing",
    "FLAG_TOMBSTONE",
    "FLAG_VALUE",
    "ClusterConfig",
    "ClusterNode",
    "ClusterRouter",
    "decode_record",
    "encode_record",
]
