"""Instrumented concurrency primitives (the Loom/Shuttle substrate).

ShardStore's concurrent paths (index mutation, LSM compaction, chunk
reclamation, the superblock buffer pool) synchronise through the primitives
in this module instead of raw ``threading`` objects.  The primitives have
two personalities:

* **Normal execution** (no model checker active): thin wrappers over
  ``threading`` -- real locks, real threads, negligible overhead.
* **Under stateless model checking** (a :class:`~repro.concurrency.scheduler.
  ModelScheduler` is installed): every acquire/release/load/store becomes a
  *yield point* where the checker may preempt the current task and run
  another, exactly how Loom and Shuttle explore interleavings of Rust
  ``std::sync`` operations (section 6 of the paper).

This dual personality is what lets the same implementation code run in unit
tests, property-based tests, and the model checker without modification --
the paper's key requirement that checking not fork the code base.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Generic, Optional, TypeVar

T = TypeVar("T")

# The active model scheduler, if any.  Installed by ModelScheduler.run().
# A plain module global (not thread-local): the model checker serialises
# all tasks, and normal execution only reads it once per operation.
_active_scheduler: Optional["SchedulerProtocol"] = None


class SchedulerProtocol:
    """What primitives need from a model scheduler (duck-typed)."""

    def yield_point(self, reason: str = "") -> None:
        raise NotImplementedError

    def block_current(self, reason: str, wake_check: Callable[[], bool]) -> None:
        raise NotImplementedError

    def spawn(self, fn: Callable[[], None], name: str) -> "TaskHandle":
        raise NotImplementedError


def install_scheduler(scheduler: Optional[SchedulerProtocol]) -> None:
    global _active_scheduler
    _active_scheduler = scheduler


def current_scheduler() -> Optional[SchedulerProtocol]:
    return _active_scheduler


def yield_point(reason: str = "") -> None:
    """Possible preemption point; no-op outside the model checker."""
    sched = _active_scheduler
    if sched is not None:
        sched.yield_point(reason)


class Mutex(Generic[T]):
    """A mutex protecting a value, used as a context manager.

    ``with mutex as value:`` acquires, yields the protected value, releases.
    Under the model checker, acquisition is a yield point and contention
    blocks the task in the scheduler (never the OS).
    """

    def __init__(self, value: T, name: str = "mutex") -> None:
        self._value = value
        self._name = name
        self._os_lock = threading.Lock()
        self._holder: Optional[object] = None  # model-checker bookkeeping

    def acquire(self) -> T:
        sched = _active_scheduler
        if sched is None:
            self._os_lock.acquire()
            return self._value
        sched.yield_point(f"acquire {self._name}")
        if self._holder is not None:
            sched.block_current(
                f"waiting for {self._name}", lambda: self._holder is None
            )
        self._holder = sched.current_task()  # type: ignore[attr-defined]
        return self._value

    def release(self) -> None:
        sched = _active_scheduler
        if sched is None:
            self._os_lock.release()
            return
        self._holder = None
        sched.yield_point(f"release {self._name}")

    def locked(self) -> bool:
        """Whether the mutex is currently held (by anyone)."""
        if _active_scheduler is not None:
            return self._holder is not None
        return self._os_lock.locked()

    def __enter__(self) -> T:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()


class AtomicCell(Generic[T]):
    """A cell with atomic load/store/swap; every access is a yield point."""

    def __init__(self, value: T, name: str = "cell") -> None:
        self._value = value
        self._name = name
        self._os_lock = threading.Lock()

    def load(self) -> T:
        yield_point(f"load {self._name}")
        with self._os_lock:
            return self._value

    def store(self, value: T) -> None:
        yield_point(f"store {self._name}")
        with self._os_lock:
            self._value = value

    def swap(self, value: T) -> T:
        yield_point(f"swap {self._name}")
        with self._os_lock:
            old = self._value
            self._value = value
            return old

    def fetch_update(self, fn: Callable[[T], T]) -> T:
        """Atomically apply ``fn``; returns the previous value."""
        yield_point(f"rmw {self._name}")
        with self._os_lock:
            old = self._value
            self._value = fn(old)
            return old


class RwLock(Generic[T]):
    """A readers-writer lock protecting a value.

    Many readers or one writer; writers take priority once waiting (no
    writer starvation).  Under the model checker every acquire/release is
    a yield point and blocking parks the task in the scheduler.
    """

    def __init__(self, value: T, name: str = "rwlock") -> None:
        self._value = value
        self._name = name
        self._state_lock = threading.Lock()  # guards the counters below
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        self._os_cond = threading.Condition(self._state_lock)

    # -- read side -------------------------------------------------------

    def acquire_read(self) -> T:
        sched = _active_scheduler
        if sched is None:
            with self._os_cond:
                self._os_cond.wait_for(
                    lambda: not self._writer and self._writers_waiting == 0,
                    timeout=5.0,
                )
                self._readers += 1
            return self._value
        sched.yield_point(f"acquire-read {self._name}")
        if self._writer or self._writers_waiting:
            sched.block_current(
                f"read-waiting {self._name}",
                lambda: not self._writer and self._writers_waiting == 0,
            )
        self._readers += 1
        return self._value

    def release_read(self) -> None:
        sched = _active_scheduler
        if sched is None:
            with self._os_cond:
                self._readers -= 1
                self._os_cond.notify_all()
            return
        self._readers -= 1
        sched.yield_point(f"release-read {self._name}")

    # -- write side ------------------------------------------------------

    def acquire_write(self) -> T:
        sched = _active_scheduler
        if sched is None:
            with self._os_cond:
                self._writers_waiting += 1
                self._os_cond.wait_for(
                    lambda: not self._writer and self._readers == 0, timeout=5.0
                )
                self._writers_waiting -= 1
                self._writer = True
            return self._value
        sched.yield_point(f"acquire-write {self._name}")
        self._writers_waiting += 1
        if self._writer or self._readers:
            sched.block_current(
                f"write-waiting {self._name}",
                lambda: not self._writer and self._readers == 0,
            )
        self._writers_waiting -= 1
        self._writer = True
        return self._value

    def release_write(self) -> None:
        sched = _active_scheduler
        if sched is None:
            with self._os_cond:
                self._writer = False
                self._os_cond.notify_all()
            return
        self._writer = False
        sched.yield_point(f"release-write {self._name}")

    class _ReadGuard:
        def __init__(self, lock: "RwLock") -> None:
            self._lock = lock

        def __enter__(self):
            return self._lock.acquire_read()

        def __exit__(self, *exc: Any) -> None:
            self._lock.release_read()

    class _WriteGuard:
        def __init__(self, lock: "RwLock") -> None:
            self._lock = lock

        def __enter__(self):
            return self._lock.acquire_write()

        def __exit__(self, *exc: Any) -> None:
            self._lock.release_write()

    def read(self) -> "RwLock._ReadGuard":
        """``with lock.read() as value:`` shared access."""
        return RwLock._ReadGuard(self)

    def write(self) -> "RwLock._WriteGuard":
        """``with lock.write() as value:`` exclusive access."""
        return RwLock._WriteGuard(self)


class Condvar:
    """Condition variable over a predicate; model-checker aware."""

    def __init__(self, name: str = "condvar") -> None:
        self._name = name
        self._os_cond = threading.Condition()

    def wait_until(self, predicate: Callable[[], bool]) -> None:
        sched = _active_scheduler
        if sched is None:
            with self._os_cond:
                self._os_cond.wait_for(predicate, timeout=5.0)
            return
        if not predicate():
            sched.block_current(f"wait {self._name}", predicate)

    def notify_all(self) -> None:
        sched = _active_scheduler
        if sched is None:
            with self._os_cond:
                self._os_cond.notify_all()
            return
        sched.yield_point(f"notify {self._name}")


class TaskHandle:
    """Join handle for a spawned task (thread or model-checker task)."""

    def __init__(self, join: Callable[[], None]) -> None:
        self._join = join

    def join(self) -> None:
        self._join()


def spawn(fn: Callable[[], None], name: str = "task") -> TaskHandle:
    """Spawn a concurrent task; a real thread outside the model checker."""
    sched = _active_scheduler
    if sched is not None:
        return sched.spawn(fn, name)
    thread = threading.Thread(target=fn, name=name, daemon=True)
    thread.start()
    return TaskHandle(thread.join)
