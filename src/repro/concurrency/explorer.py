"""Interleaving exploration strategies (section 6).

Two families, matching the paper's tool split:

* :class:`DfsExplorer` -- sound, exhaustive enumeration of all schedules
  (the Loom analogue).  Replay-based: executions are deterministic given
  the decision sequence, so depth-first search over decision prefixes
  visits every interleaving.  Only viable for small harnesses.
* :class:`RandomExplorer` / :class:`PctExplorer` -- randomized exploration
  (the Shuttle analogue).  PCT (probabilistic concurrency testing,
  Burckhardt et al.) assigns random task priorities with ``depth`` random
  priority-change points, giving probabilistic bug-finding guarantees for
  bugs of small depth; it scales to executions with millions of steps at
  the cost of soundness -- exactly the trade-off the paper describes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from .scheduler import DeadlockError, FixedSchedule, ModelScheduler, Strategy, TaskFailed


@dataclass
class ExplorationResult:
    """Outcome of exploring one test body."""

    executions: int = 0
    total_steps: int = 0
    failure: Optional[Union[TaskFailed, DeadlockError]] = None
    failing_schedule: Optional[List[int]] = None
    exhausted: bool = False  # DFS only: the whole space was enumerated

    @property
    def passed(self) -> bool:
        return self.failure is None


class _RandomStrategy(Strategy):
    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def choose(self, runnable: List[int], step: int) -> int:
        return self.rng.choice(runnable)


class _PctStrategy(Strategy):
    """Priority-based scheduling with d random priority-change points."""

    def __init__(self, rng: random.Random, depth: int, max_steps: int) -> None:
        self.rng = rng
        self._priorities: dict = {}
        self._change_points = set(
            rng.randrange(max_steps) for _ in range(max(0, depth - 1))
        )
        self._demoted_floor = 0.0

    def _priority(self, task_id: int) -> float:
        if task_id not in self._priorities:
            self._priorities[task_id] = 1.0 + self.rng.random()
        return self._priorities[task_id]

    def choose(self, runnable: List[int], step: int) -> int:
        best = max(runnable, key=self._priority)
        if step in self._change_points:
            # Demote the task that would have run below everyone else.
            self._demoted_floor -= 1.0
            self._priorities[best] = self._demoted_floor
            best = max(runnable, key=self._priority)
        return best


class _DfsStrategy(Strategy):
    """Follows a decision prefix, then picks the first option, recording
    the branching factor at every step for backtracking."""

    def __init__(self, prefix: List[int]) -> None:
        self.prefix = prefix
        self.options_seen: List[int] = []

    def choose(self, runnable: List[int], step: int) -> int:
        self.options_seen.append(len(runnable))
        if step < len(self.prefix):
            index = self.prefix[step]
        else:
            index = 0
        if index >= len(runnable):
            index = 0
        return runnable[index]


class Explorer:
    """Base driver: repeatedly run a body under fresh strategies."""

    def run_once(
        self, body_factory: Callable[[], Callable[[], None]], strategy: Strategy
    ) -> ModelScheduler:
        scheduler = ModelScheduler(strategy)
        scheduler.run(body_factory())
        return scheduler


class RandomExplorer(Explorer):
    """Uniform random walk over schedules."""

    def __init__(self, iterations: int = 100, seed: int = 0) -> None:
        self.iterations = iterations
        self.seed = seed

    def explore(
        self, body_factory: Callable[[], Callable[[], None]]
    ) -> ExplorationResult:
        result = ExplorationResult()
        for i in range(self.iterations):
            rng = random.Random((self.seed << 20) + i)
            scheduler = ModelScheduler(_RandomStrategy(rng))
            try:
                scheduler.run(body_factory())
            except (TaskFailed, DeadlockError) as exc:
                result.failure = exc
                result.failing_schedule = scheduler.schedule_trace
                result.executions = i + 1
                result.total_steps += len(scheduler.schedule_trace)
                return result
            result.total_steps += len(scheduler.schedule_trace)
        result.executions = self.iterations
        return result


class PctExplorer(Explorer):
    """Probabilistic concurrency testing (Burckhardt et al. 2010)."""

    def __init__(
        self,
        iterations: int = 100,
        depth: int = 3,
        max_steps_hint: int = 64,
        seed: int = 0,
    ) -> None:
        self.iterations = iterations
        self.depth = depth
        self.max_steps_hint = max_steps_hint
        self.seed = seed

    def explore(
        self, body_factory: Callable[[], Callable[[], None]]
    ) -> ExplorationResult:
        result = ExplorationResult()
        for i in range(self.iterations):
            rng = random.Random((self.seed << 20) + i)
            strategy = _PctStrategy(rng, self.depth, self.max_steps_hint)
            scheduler = ModelScheduler(strategy)
            try:
                scheduler.run(body_factory())
            except (TaskFailed, DeadlockError) as exc:
                result.failure = exc
                result.failing_schedule = scheduler.schedule_trace
                result.executions = i + 1
                result.total_steps += len(scheduler.schedule_trace)
                return result
            result.total_steps += len(scheduler.schedule_trace)
        result.executions = self.iterations
        return result


class DfsExplorer(Explorer):
    """Exhaustive depth-first enumeration of all schedules (Loom-style)."""

    def __init__(self, max_executions: int = 20_000) -> None:
        self.max_executions = max_executions

    def explore(
        self, body_factory: Callable[[], Callable[[], None]]
    ) -> ExplorationResult:
        result = ExplorationResult()
        # Each stack entry is the option index chosen at that decision step.
        prefix: List[int] = []
        branching: List[int] = []  # options available at each step, last run
        while result.executions < self.max_executions:
            strategy = _DfsStrategy(list(prefix))
            scheduler = ModelScheduler(strategy)
            try:
                scheduler.run(body_factory())
            except (TaskFailed, DeadlockError) as exc:
                result.failure = exc
                result.failing_schedule = scheduler.schedule_trace
                result.executions += 1
                result.total_steps += len(scheduler.schedule_trace)
                return result
            result.executions += 1
            result.total_steps += len(scheduler.schedule_trace)
            # Extend the explicit choice list to the full execution length.
            branching = strategy.options_seen
            choices = list(prefix) + [0] * (len(branching) - len(prefix))
            # Backtrack: find the deepest step with an unexplored sibling.
            depth = len(choices) - 1
            while depth >= 0 and choices[depth] + 1 >= branching[depth]:
                depth -= 1
            if depth < 0:
                result.exhausted = True
                return result
            prefix = choices[: depth + 1]
            prefix[depth] += 1
        return result


def replay(
    body_factory: Callable[[], Callable[[], None]], schedule: List[int]
) -> None:
    """Re-run a failing schedule (for debugging); raises the same failure."""
    scheduler = ModelScheduler(FixedSchedule(schedule))
    scheduler.run(body_factory())
