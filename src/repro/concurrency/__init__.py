"""Stateless model checking: the Loom/Shuttle substrate (section 6)."""

from .explorer import (
    DfsExplorer,
    ExplorationResult,
    PctExplorer,
    RandomExplorer,
    replay,
)
from .model import model
from .primitives import (
    AtomicCell,
    RwLock,
    Condvar,
    Mutex,
    TaskHandle,
    current_scheduler,
    install_scheduler,
    spawn,
    yield_point,
)
from .scheduler import DeadlockError, FixedSchedule, ModelScheduler, Strategy, TaskFailed

__all__ = [
    "AtomicCell",
    "Condvar",
    "DeadlockError",
    "DfsExplorer",
    "ExplorationResult",
    "FixedSchedule",
    "ModelScheduler",
    "Mutex",
    "PctExplorer",
    "RandomExplorer",
    "RwLock",
    "Strategy",
    "TaskFailed",
    "TaskHandle",
    "current_scheduler",
    "install_scheduler",
    "model",
    "replay",
    "spawn",
    "yield_point",
]
