"""``model(...)``: the Loom-style entry point for concurrency harnesses.

Mirrors ``loom::model(|| { ... })`` (the paper's Fig. 4): pass a closure
that sets up state, spawns tasks with
:func:`repro.concurrency.primitives.spawn`, joins them, and asserts.  The
checker explores interleavings of every instrumented synchronisation
operation inside the closure.

Strategy selection mirrors the paper's tool split: ``"dfs"`` soundly
explores *all* interleavings (use for small, correctness-critical
harnesses); ``"pct"`` and ``"random"`` sample (use for large end-to-end
harnesses that DFS cannot scale to).
"""

from __future__ import annotations

from typing import Callable

from .explorer import (
    DfsExplorer,
    ExplorationResult,
    PctExplorer,
    RandomExplorer,
)


def model(
    body_factory: Callable[[], Callable[[], None]],
    *,
    strategy: str = "dfs",
    iterations: int = 200,
    pct_depth: int = 3,
    pct_steps_hint: int = 64,
    seed: int = 0,
    max_executions: int = 20_000,
) -> ExplorationResult:
    """Explore interleavings of the concurrent test body.

    ``body_factory`` is called once per execution and must return a fresh
    test body (state must not leak between executions -- the checker
    replays the body many times).

    Returns an :class:`ExplorationResult`; ``result.passed`` is False if
    any interleaving raised (assertion failure) or deadlocked, in which
    case ``result.failing_schedule`` replays it via
    :func:`repro.concurrency.explorer.replay`.
    """
    if strategy == "dfs":
        explorer = DfsExplorer(max_executions=max_executions)
    elif strategy == "random":
        explorer = RandomExplorer(iterations=iterations, seed=seed)
    elif strategy == "pct":
        explorer = PctExplorer(
            iterations=iterations,
            depth=pct_depth,
            max_steps_hint=pct_steps_hint,
            seed=seed,
        )
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    return explorer.explore(body_factory)
