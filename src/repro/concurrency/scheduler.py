"""The stateless model checking scheduler (section 6).

Serialises real Python threads so that exactly one runs at a time, with
context switches only at instrumented *yield points* (lock operations,
atomic accesses, explicit ``yield_point`` calls).  A *strategy* decides
which runnable task runs at each point; replaying the same decision
sequence replays the same execution, which is what makes executions
deterministic, failures reproducible, and exhaustive enumeration possible.

This is the architecture of AWS's Shuttle checker (and of Loom): the
program under test runs unmodified, scheduling is the only controlled
source of non-determinism, and the checker explores interleavings either
exhaustively (small harnesses) or randomly/with PCT (large ones).

Deadlock detection falls out naturally: if no task is runnable and some
are blocked, the blocked tasks' wake predicates can never become true
(nothing else will ever run), so the execution is deadlocked -- the
paper's issue #12 is caught exactly this way.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .primitives import SchedulerProtocol, TaskHandle, install_scheduler


class DeadlockError(Exception):
    """All live tasks are blocked; no wake predicate can ever fire."""


class TaskFailed(Exception):
    """A task raised; carries the original exception and the schedule."""

    def __init__(self, task_name: str, original: BaseException, schedule: List[int]):
        super().__init__(f"task {task_name!r} failed: {original!r}")
        self.task_name = task_name
        self.original = original
        self.schedule = schedule


@dataclass
class _Task:
    task_id: int
    name: str
    thread: Optional[threading.Thread] = None
    resume: threading.Event = field(default_factory=threading.Event)
    yielded: threading.Event = field(default_factory=threading.Event)
    finished: bool = False
    blocked_reason: Optional[str] = None
    wake_check: Optional[Callable[[], bool]] = None
    exception: Optional[BaseException] = None
    last_yield_reason: str = ""


class Strategy:
    """Chooses which runnable task runs next.  One instance per execution."""

    def choose(self, runnable: List[int], step: int) -> int:
        raise NotImplementedError


class FixedSchedule(Strategy):
    """Replays a recorded decision sequence (for failure reproduction)."""

    def __init__(self, schedule: List[int]) -> None:
        self.schedule = list(schedule)

    def choose(self, runnable: List[int], step: int) -> int:
        if step < len(self.schedule) and self.schedule[step] in runnable:
            return self.schedule[step]
        return runnable[0]


class ModelScheduler(SchedulerProtocol):
    """Runs one execution of a concurrent test body under a strategy."""

    def __init__(self, strategy: Strategy, max_steps: int = 200_000) -> None:
        self.strategy = strategy
        self.max_steps = max_steps
        self._tasks: Dict[int, _Task] = {}
        self._by_thread: Dict[int, _Task] = {}
        self._next_id = 0
        self._steps = 0
        #: The decision made at every scheduling point (replayable).
        self.schedule_trace: List[int] = []
        #: Human-readable yield reasons, for debugging failing schedules.
        self.step_log: List[str] = []
        #: Set when the run is over: parked tasks free-run to completion.
        self._released = False

    # ------------------------------------------------------------------
    # task-side API (called from worker threads via primitives)

    def current_task(self) -> _Task:
        return self._by_thread[threading.get_ident()]

    def yield_point(self, reason: str = "") -> None:
        task = self._by_thread.get(threading.get_ident())
        if task is None:
            return  # a non-model thread wandered in; ignore
        task.last_yield_reason = reason
        self._pause(task)

    def block_current(self, reason: str, wake_check: Callable[[], bool]) -> None:
        task = self.current_task()
        task.blocked_reason = reason
        task.wake_check = wake_check
        task.last_yield_reason = f"blocked: {reason}"
        self._pause(task)

    def _pause(self, task: _Task) -> None:
        if self._released:
            return  # run is over; free-run to completion
        task.yielded.set()
        task.resume.wait()
        if not self._released:
            task.resume.clear()

    def spawn(self, fn: Callable[[], None], name: str) -> TaskHandle:
        task = self._register(name)

        def body() -> None:
            self._by_thread[threading.get_ident()] = task
            task.resume.wait()
            task.resume.clear()
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - reported to driver
                task.exception = exc
            finally:
                task.finished = True
                task.yielded.set()

        task.thread = threading.Thread(target=body, name=name, daemon=True)
        task.thread.start()
        return TaskHandle(lambda: self._join(task))

    def _join(self, waiting_on: _Task) -> None:
        """Called from a task; blocks it until ``waiting_on`` finishes."""
        if not waiting_on.finished:
            self.block_current(
                f"join {waiting_on.name}", lambda: waiting_on.finished
            )

    def _register(self, name: str) -> _Task:
        task = _Task(task_id=self._next_id, name=name)
        self._next_id += 1
        self._tasks[task.task_id] = task
        return task

    # ------------------------------------------------------------------
    # driver side

    def run(self, body: Callable[[], None]) -> None:
        """Execute ``body`` (as task 0) to completion under the strategy.

        Raises :class:`TaskFailed` if any task raises, :class:`DeadlockError`
        on deadlock.
        """
        install_scheduler(self)
        try:
            main = self._register("main")
            main.thread = threading.Thread(
                target=self._main_body, args=(main, body), name="main", daemon=True
            )
            main.thread.start()
            self._loop()
        finally:
            install_scheduler(None)
            self._release_stragglers()
        for task in self._tasks.values():
            if task.exception is not None:
                raise TaskFailed(task.name, task.exception, self.schedule_trace)

    def _main_body(self, task: _Task, body: Callable[[], None]) -> None:
        self._by_thread[threading.get_ident()] = task
        task.resume.wait()
        task.resume.clear()
        try:
            body()
        except BaseException as exc:  # noqa: BLE001
            task.exception = exc
        finally:
            task.finished = True
            task.yielded.set()

    def _loop(self) -> None:
        while True:
            runnable = self._runnable()
            live = [t for t in self._tasks.values() if not t.finished]
            if not live:
                return
            if any(t.exception is not None for t in self._tasks.values()):
                # A task failed; stop exploring, run the rest to completion
                # so threads terminate (their work no longer matters).
                runnable = [t.task_id for t in live if self._can_run(t)]
                if not runnable:
                    return
                choice = runnable[0]
            elif not runnable:
                blocked = {
                    t.name: t.blocked_reason
                    for t in live
                    if t.blocked_reason is not None
                }
                raise DeadlockError(f"all tasks blocked: {blocked}")
            else:
                choice = self.strategy.choose(sorted(runnable), self._steps)
                self.schedule_trace.append(choice)
            task = self._tasks[choice]
            self.step_log.append(f"{task.name}: {task.last_yield_reason}")
            self._steps += 1
            if self._steps > self.max_steps:
                raise RuntimeError("model checking exceeded max steps")
            self._step(task)

    def _runnable(self) -> List[int]:
        out = []
        for task in self._tasks.values():
            if not task.finished and self._can_run(task):
                out.append(task.task_id)
        return out

    def _can_run(self, task: _Task) -> bool:
        if task.finished:
            return False
        if task.wake_check is not None:
            return bool(task.wake_check())
        return True

    def _step(self, task: _Task) -> None:
        """Resume one task until its next yield point (or completion)."""
        task.blocked_reason = None
        task.wake_check = None
        task.yielded.clear()
        task.resume.set()
        task.yielded.wait()

    def _release_stragglers(self) -> None:
        """Let any still-parked threads run to completion un-scheduled.

        Sets the released flag (turning every later yield/block into a
        no-op) and keeps waking parked threads until they finish -- a
        deadlocked execution's threads were blocked only in the scheduler,
        so they always terminate once freed.
        """
        self._released = True
        deadline = time.time() + 2.0
        while time.time() < deadline:
            alive = [
                t
                for t in self._tasks.values()
                if t.thread is not None and t.thread.is_alive()
            ]
            if not alive:
                return
            for task in alive:
                task.resume.set()
            time.sleep(0.005)
