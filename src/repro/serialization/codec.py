"""Checksummed record framing for superblock and LSM metadata records.

ShardStore treats all bytes read from disk as untrusted (section 7): bit rot
and torn writes can corrupt anything, so deserializers must *never* raise an
unexpected exception -- on any input they either return a value or raise
:class:`~repro.shardstore.errors.CorruptionError`.  The panic-freedom
harness in :mod:`repro.serialization.fuzz` checks exactly this property, up
to a size bound exhaustively and beyond it by fuzzing, mirroring the
paper's use of the Crux symbolic-evaluation engine.

Record layout (all integers little-endian)::

    magic(4) | payload_len(4) | crc32(payload)(4) | payload | zero padding

Records are padded to a whole number of disk pages so that a torn append
can never leave a prefix of one record that parses as a valid record.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Dict, List, Tuple, Union

from repro.errors import CorruptionError

RECORD_MAGIC = b"SSRC"
_HEADER = struct.Struct("<4sII")

# A compact, canonical, self-describing value encoding.  We deliberately do
# not use pickle (arbitrary code execution on untrusted bytes) or json
# (no bytes support): on-disk data must decode through code we control.
_T_INT = 0
_T_BYTES = 1
_T_STR = 2
_T_LIST = 3
_T_DICT = 4
_T_NONE = 5
_T_BOOL = 6

Value = Union[int, bytes, str, list, dict, None, bool]


class Preencoded:
    """A value already in canonical encoding, spliced verbatim on encode.

    Lets callers with a slow-changing subtree (the superblock's extent
    ownership map) cache its :func:`encode_value` bytes and reuse them
    across records.  The holder is responsible for the bytes being a valid
    canonical encoding of the value it stands for; decoding knows nothing
    of this type, so output stays byte-identical to encoding the plain
    value.  Never valid as a dict key (keys participate in canonical
    ordering, which needs the real value).
    """

    __slots__ = ("data",)

    def __init__(self, data: bytes) -> None:
        self.data = data

_pack_q = struct.Struct("<q").pack
_pack_I = struct.Struct("<I").pack
_INT_MIN = -(2**63)
_INT_MAX = 2**63


def encode_value(value: Value) -> bytes:
    """Encode a value tree into canonical bytes."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def _encode_into(out: bytearray, value: Value) -> None:
    # Exact-type dispatch, hottest types first.  ``type(True) is int`` is
    # false, so checking ``int`` before ``bool`` here is safe; subclasses of
    # the encodable types fall through to the isinstance chain below, which
    # preserves the original tagging rules (bool before int).
    t = type(value)
    if t is int:
        if not _INT_MIN <= value < _INT_MAX:
            raise ValueError("integer out of encodable range (64-bit signed)")
        out.append(_T_INT)
        out += _pack_q(value)
    elif t is bytes:
        out.append(_T_BYTES)
        out += _pack_I(len(value))
        out += value
    elif t is list:
        out.append(_T_LIST)
        out += _pack_I(len(value))
        for item in value:
            # Inline the scalar-int case: locator lists are lists of small
            # ints and dominate metadata encodes.
            if type(item) is int and _INT_MIN <= item < _INT_MAX:
                out.append(_T_INT)
                out += _pack_q(item)
            else:
                _encode_into(out, item)
    elif t is dict:
        out.append(_T_DICT)
        out += _pack_I(len(value))
        # Canonical order so encodings are deterministic regardless of
        # insertion order (determinism is a design principle, section 4.3).
        # Homogeneously-typed key sets (the common case: extent numbers,
        # shard keys) sort natively; mixed-type keys fall back to the
        # (typename, repr) order.  Either rule is a pure function of the
        # key *set*, so equal dicts encode equal regardless of history.
        try:
            keys = sorted(value)
        except TypeError:
            keys = sorted(value, key=_dict_key_order)
        for key in keys:
            tk = type(key)
            if tk is bytes:
                out.append(_T_BYTES)
                out += _pack_I(len(key))
                out += key
            elif tk is int and _INT_MIN <= key < _INT_MAX:
                out.append(_T_INT)
                out += _pack_q(key)
            else:
                _encode_into(out, key)
            item = value[key]
            if type(item) is int and _INT_MIN <= item < _INT_MAX:
                out.append(_T_INT)
                out += _pack_q(item)
            else:
                _encode_into(out, item)
    elif t is str:
        data = value.encode("utf-8")
        out.append(_T_STR)
        out += _pack_I(len(data))
        out += data
    elif value is None:
        out.append(_T_NONE)
    elif t is bool:
        out.append(_T_BOOL)
        out.append(1 if value else 0)
    elif t is Preencoded:
        out += value.data
    elif isinstance(value, bool):  # must precede int check
        out.append(_T_BOOL)
        out.append(1 if value else 0)
    elif isinstance(value, int):
        if not _INT_MIN <= value < _INT_MAX:
            raise ValueError("integer out of encodable range (64-bit signed)")
        out.append(_T_INT)
        out += _pack_q(value)
    elif isinstance(value, bytes):
        out.append(_T_BYTES)
        out += _pack_I(len(value))
        out += value
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(_T_STR)
        out += _pack_I(len(data))
        out += data
    elif isinstance(value, list):
        out.append(_T_LIST)
        out += _pack_I(len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        out += _pack_I(len(value))
        for key in sorted(value, key=_dict_key_order):
            _encode_into(out, key)
            _encode_into(out, value[key])
    elif isinstance(value, Preencoded):
        out += value.data
    else:
        raise TypeError(f"unencodable value of type {type(value).__name__}")


def _dict_key_order(key: Any) -> Tuple[str, str]:
    return (type(key).__name__, repr(key))


class _Reader:
    """Bounds-checked cursor over untrusted bytes."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if n < 0 or self.pos + n > len(self.data):
            raise CorruptionError("truncated value encoding")
        out = self.data[self.pos : self.pos + n]
        self.pos += n
        return out

    def byte(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self.take(8))[0]


# Guard against adversarial deep nesting blowing the Python stack: decoding
# is depth-limited, and exceeding the limit is corruption, not a crash.
_MAX_DEPTH = 32
_MAX_CONTAINER = 1 << 20


def decode_value(data: bytes) -> Value:
    """Decode canonical bytes; raises :class:`CorruptionError` on any
    malformed input (never any other exception)."""
    reader = _Reader(data)
    value = _decode_one(reader, 0)
    if reader.pos != len(data):
        raise CorruptionError("trailing bytes after value encoding")
    return value


def _decode_one(reader: _Reader, depth: int) -> Value:
    if depth > _MAX_DEPTH:
        raise CorruptionError("value nesting too deep")
    tag = reader.byte()
    if tag == _T_NONE:
        return None
    if tag == _T_BOOL:
        flag = reader.byte()
        if flag not in (0, 1):
            raise CorruptionError("invalid bool encoding")
        return bool(flag)
    if tag == _T_INT:
        return reader.i64()
    if tag == _T_BYTES:
        return reader.take(reader.u32())
    if tag == _T_STR:
        raw = reader.take(reader.u32())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CorruptionError("invalid utf-8 in string") from exc
    if tag == _T_LIST:
        count = reader.u32()
        if count > _MAX_CONTAINER:
            raise CorruptionError("list length out of range")
        return [_decode_one(reader, depth + 1) for _ in range(count)]
    if tag == _T_DICT:
        count = reader.u32()
        if count > _MAX_CONTAINER:
            raise CorruptionError("dict length out of range")
        out: Dict[Any, Any] = {}
        for _ in range(count):
            key = _decode_one(reader, depth + 1)
            if not isinstance(key, (int, str, bytes, bool)) and key is not None:
                raise CorruptionError("unhashable dict key")
            out[key] = _decode_one(reader, depth + 1)
        return out
    raise CorruptionError(f"unknown value tag {tag}")


def encode_record(payload_value: Value, page_size: int) -> bytes:
    """Frame a value as a CRC'd record padded to whole pages."""
    out = bytearray(_HEADER.size)
    _encode_into(out, payload_value)
    payload_len = len(out) - _HEADER.size
    _HEADER.pack_into(
        out, 0, RECORD_MAGIC, payload_len, zlib.crc32(memoryview(out)[_HEADER.size :])
    )
    padded_len = -(-len(out) // page_size) * page_size
    out += bytes(padded_len - len(out))
    return bytes(out)


def record_size(payload_value: Value, page_size: int) -> int:
    """Size in bytes :func:`encode_record` would produce."""
    payload_len = len(encode_value(payload_value))
    raw = _HEADER.size + payload_len
    return -(-raw // page_size) * page_size


def decode_record(data: bytes, offset: int = 0) -> Tuple[Value, int]:
    """Decode one record at ``offset``; returns (value, bytes consumed).

    ``bytes consumed`` excludes page padding -- callers that walk a log of
    records should round up to the page size themselves.  Raises
    :class:`CorruptionError` for anything malformed.
    """
    if offset < 0 or offset + _HEADER.size > len(data):
        raise CorruptionError("record header out of bounds")
    magic, payload_len, crc = _HEADER.unpack_from(data, offset)
    if magic != RECORD_MAGIC:
        raise CorruptionError("bad record magic")
    end = offset + _HEADER.size + payload_len
    if payload_len > len(data) or end > len(data):
        raise CorruptionError("record payload out of bounds")
    payload = data[offset + _HEADER.size : end]
    if zlib.crc32(payload) != crc:
        raise CorruptionError("record checksum mismatch")
    return decode_value(payload), _HEADER.size + payload_len


def scan_records(data: bytes, page_size: int) -> List[Tuple[int, Value]]:
    """Walk page-aligned records in ``data``; stop at the first bad one.

    Returns ``[(offset, value), ...]``.  Used by superblock and metadata
    recovery: records are appended sequentially, so the first undecodable
    page marks the end of the valid log (a torn tail or unwritten space).
    """
    records, _ = scan_records_with_end(data, page_size)
    return records


def scan_records_with_end(
    data: bytes, page_size: int
) -> Tuple[List[Tuple[int, Value]], int]:
    """Like :func:`scan_records`, also returning the valid-prefix end.

    The end offset is where the log's next record should be appended.
    Recovery must *truncate* the log extent to this offset (seal the log):
    a torn multi-page record leaves undecodable garbage, and appending
    after the garbage would strand every later record beyond the point
    where future scans stop.
    """
    out: List[Tuple[int, Value]] = []
    offset = 0
    while offset + _HEADER.size <= len(data):
        try:
            value, consumed = decode_record(data, offset)
        except CorruptionError:
            break
        out.append((offset, value))
        offset += -(-consumed // page_size) * page_size
    return out, offset
