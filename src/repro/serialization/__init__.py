"""Serialization: untrusted-byte codecs and the panic-freedom harness."""

from .codec import (
    RECORD_MAGIC,
    Preencoded,
    decode_record,
    decode_value,
    encode_record,
    encode_value,
    record_size,
    scan_records,
)

__all__ = [
    "RECORD_MAGIC",
    "Preencoded",
    "decode_record",
    "decode_value",
    "encode_record",
    "encode_value",
    "record_size",
    "scan_records",
]
