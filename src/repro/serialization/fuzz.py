"""Panic-freedom checking for deserializers (section 7).

ShardStore treats bytes read from disk as untrusted; deserialization code
must be robust to arbitrary corruption.  The paper proves panic-freedom of
its deserializers with the Crux symbolic-evaluation engine up to a size
bound, and fuzzes the same code on larger inputs.

Python has no symbolic-evaluation engine available offline, so we
reproduce the *property* with the same two-tier structure:

* **exhaustive** checking of every byte string up to a small bound
  (the role Crux plays in the paper), and
* **seeded random + mutation fuzzing** on larger inputs (their fuzzing
  tier), including structure-aware mutations of valid encodings --
  bit-flips, truncations, splices -- which reach much deeper into the
  decoders than uniform random bytes.

The property: for any input, the decoder either returns a value or raises
:class:`~repro.shardstore.errors.CorruptionError`.  Any other exception is
a panic (a bug).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.campaign.spec import ShardResult, ShardSpec

from repro.shardstore.errors import CorruptionError

Decoder = Callable[[bytes], object]


@dataclass
class PanicReport:
    """Outcome of a panic-freedom run for one decoder."""

    decoder_name: str
    inputs_tried: int = 0
    decoded_ok: int = 0
    rejected: int = 0
    panic: Optional[BaseException] = None
    panic_input: Optional[bytes] = None

    @property
    def passed(self) -> bool:
        return self.panic is None


def _try_one(decoder: Decoder, data: bytes, report: PanicReport) -> bool:
    """Feed one input; returns False if the decoder panicked."""
    report.inputs_tried += 1
    try:
        decoder(data)
    except CorruptionError:
        report.rejected += 1
        return True
    except BaseException as exc:  # noqa: BLE001 - the property under test
        report.panic = exc
        report.panic_input = data
        return False
    report.decoded_ok += 1
    return True


def check_exhaustive(
    decoder: Decoder, *, max_len: int = 3, name: str = "decoder"
) -> PanicReport:
    """Prove panic-freedom for **every** input up to ``max_len`` bytes.

    256^n blows up fast; 3 bytes (16.8M inputs) is the practical ceiling,
    and the default stays below it.  This is the Crux-shaped tier: a real
    proof, for a small bound.
    """
    report = PanicReport(decoder_name=name)
    for length in range(max_len + 1):
        for combo in itertools.product(range(256), repeat=length):
            if not _try_one(decoder, bytes(combo), report):
                return report
    return report


def check_fuzz(
    decoder: Decoder,
    *,
    iterations: int = 10_000,
    max_len: int = 512,
    seed: int = 0,
    corpus: Optional[List[bytes]] = None,
    name: str = "decoder",
) -> PanicReport:
    """Random + mutation fuzzing above the exhaustive bound.

    ``corpus`` seeds structure-aware mutations: valid encodings are
    bit-flipped, truncated, extended, and spliced, which exercises the
    deep validation paths uniform random bytes rarely reach.
    """
    rng = random.Random(seed)
    report = PanicReport(decoder_name=name)
    corpus = list(corpus or [])
    for _ in range(iterations):
        mode = rng.random()
        if corpus and mode < 0.6:
            data = _mutate(rng, rng.choice(corpus), max_len)
        else:
            data = bytes(rng.getrandbits(8) for _ in range(rng.randrange(max_len)))
        if not _try_one(decoder, data, report):
            return report
    return report


def _mutate(rng: random.Random, base: bytes, max_len: int) -> bytes:
    data = bytearray(base[:max_len])
    if not data:
        return bytes(data)
    for _ in range(rng.randrange(1, 4)):
        choice = rng.random()
        if choice < 0.4:  # flip bits
            index = rng.randrange(len(data))
            data[index] ^= 1 << rng.randrange(8)
        elif choice < 0.6:  # truncate
            data = data[: rng.randrange(len(data) + 1)]
            if not data:
                return bytes(data)
        elif choice < 0.8:  # extend with noise
            extra = bytes(rng.getrandbits(8) for _ in range(rng.randrange(1, 16)))
            data = bytearray((bytes(data) + extra)[:max_len])
        else:  # splice a slice of itself elsewhere
            if len(data) >= 2:
                start = rng.randrange(len(data))
                end = rng.randrange(start, len(data))
                at = rng.randrange(len(data))
                data = bytearray(
                    (bytes(data[:at]) + bytes(data[start:end]) + bytes(data[at:]))[
                        :max_len
                    ]
                )
    return bytes(data)


def run_shard(spec: "ShardSpec") -> "ShardResult":
    """Picklable campaign entry point: one deserializer fuzzing unit.

    ``spec.params['decoder']`` names one decoder from
    :func:`standard_decoders` (or ``"all"``); the unit runs the exhaustive
    tier up to ``exhaustive_len`` bytes plus ``iterations`` seeded
    mutation-fuzz inputs.  A panic is reported with its input rendered in
    hex so the artifact is self-contained.
    """
    from repro.campaign.spec import ShardFailure, ShardResult

    wanted = spec.param("decoder", "all")
    decoders = [
        (name, decoder)
        for name, decoder in standard_decoders()
        if wanted in ("all", name)
    ]
    if not decoders:
        raise ValueError(f"unknown decoder {wanted!r}")
    result = ShardResult(
        shard_id=spec.shard_id, kind=spec.kind, seed=spec.seed
    )
    corpus = standard_corpus()
    for name, decoder in decoders:
        reports = [
            check_exhaustive(
                decoder,
                max_len=spec.param("exhaustive_len", 1),
                name=name,
            ),
            check_fuzz(
                decoder,
                iterations=spec.param("iterations", 2000),
                seed=spec.seed,
                corpus=corpus,
                name=name,
            ),
        ]
        for report in reports:
            result.cases += report.inputs_tried
            if not report.passed:
                data = report.panic_input or b""
                result.failures.append(
                    ShardFailure(
                        kind=spec.kind,
                        seed=spec.seed,
                        detail=(
                            f"{name} panicked with "
                            f"{type(report.panic).__name__} on "
                            f"{len(data)}-byte input {data.hex()!r}"
                        ),
                    )
                )
    return result


def standard_decoders() -> List[Tuple[str, Decoder]]:
    """Every untrusted-byte decoder in the code base, for the harnesses."""
    from repro.serialization.codec import decode_record, decode_value
    from repro.shardstore.chunk import decode_chunk
    from repro.shardstore.protocol import decode_request, decode_response

    return [
        ("decode_value", decode_value),
        ("decode_record", lambda data: decode_record(data, 0)),
        ("decode_chunk", lambda data: decode_chunk(data, 0)),
        ("decode_request", decode_request),
        ("decode_response", decode_response),
    ]


def standard_corpus(seed: int = 0) -> List[bytes]:
    """Valid encodings to seed mutation fuzzing."""
    from repro.serialization.codec import encode_record, encode_value
    from repro.shardstore.chunk import KIND_DATA, encode_chunk

    from repro.shardstore.protocol import (
        Request,
        Response,
        encode_request,
        encode_response,
    )

    rng = random.Random(seed)
    uuid = bytes(rng.getrandbits(8) for _ in range(16))
    return [
        encode_value({"epoch": 3, "pointers": {"4": 100}, b"blob": b"\x00" * 40}),
        encode_value([1, None, True, "text", [b"nested", {"k": -5}]]),
        encode_record({"epoch": 9, "runs": [[1, [4, 0, 60]]]}, 128),
        encode_chunk(KIND_DATA, b"key", b"payload" * 10, uuid),
        encode_request(Request(op="put", key=b"key", value=b"payload")),
        encode_response(Response(status="ok", value=b"payload")),
    ]
