"""Reference model of the whole key-value store: a dict (section 3.2).

This is the paper's headline specification style: the expected semantics of
ShardStore's API, written as the simplest possible executable code.  The
durability property (section 3.1) is "the model and implementation remain
in equivalent states after each API call", where equivalence is having the
same key-value mapping.

Background operations -- index flush, superblock flush, compaction, chunk
reclamation, clean reboot -- are deliberately *no-ops* here: they must not
change the key-value mapping, and including them in the conformance
alphabet validates exactly that (Fig. 3).

The model doubles as a mock in unit tests (the paper's trick for keeping
models maintained): anything that needs "some key-value store" can take one
of these instead of a real ShardStore.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.shardstore.errors import KeyNotFoundError, NotFoundError, validate_key


class ReferenceKvStore:
    """The executable specification of the ShardStore key-value API.

    Structurally conforms to :class:`repro.shardstore.protocol.KVNode`, so
    it can stand in wherever a real store or node is expected -- including
    the uniform ``delete``-of-absent-key :class:`KeyNotFoundError` contract.
    """

    def __init__(self) -> None:
        self._mapping: Dict[bytes, bytes] = {}

    # -- API operations (mirror ShardStore's signatures) ----------------

    def put(self, key: bytes, value: bytes) -> None:
        validate_key(key)
        self._mapping[key] = value

    def get(self, key: bytes) -> bytes:
        validate_key(key)
        if key not in self._mapping:
            raise NotFoundError(f"no shard for key {key!r}")
        return self._mapping[key]

    def delete(self, key: bytes) -> None:
        validate_key(key)
        if key not in self._mapping:
            raise KeyNotFoundError(f"no shard for key {key!r}")
        del self._mapping[key]

    def contains(self, key: bytes) -> bool:
        validate_key(key)
        return key in self._mapping

    def keys(self) -> List[bytes]:
        return sorted(self._mapping)

    # -- background operations: no-ops in the specification -------------

    def flush(self) -> None:
        """No-op: the specification is immediately durable."""

    def drain(self) -> None:
        """No-op: the specification has no pending IO."""

    def flush_index(self) -> None:
        """No-op: flushing must not change the key-value mapping."""

    def flush_superblock(self) -> None:
        """No-op: superblock maintenance must not change the mapping."""

    def compact(self) -> None:
        """No-op: LSM compaction must not change the mapping."""

    def reclaim(self, extent: int) -> None:
        """No-op: garbage collection must not change the mapping."""

    def clean_reboot(self) -> None:
        """No-op: a clean reboot must not lose or change any data."""

    def scrub(self) -> None:
        """No-op: integrity scrubbing must not change the mapping."""

    def migrate_shard(self, key: bytes, target: int) -> bool:
        """Migration moves data between disks; the mapping is unchanged."""
        return self.contains(key)

    # -- model utilities -------------------------------------------------

    def mapping(self) -> Dict[bytes, bytes]:
        """A copy of the current key-value mapping (for invariant checks)."""
        return dict(self._mapping)

    def clone(self) -> "ReferenceKvStore":
        out = ReferenceKvStore()
        out._mapping = dict(self._mapping)
        return out

    def __len__(self) -> int:
        return len(self._mapping)

    def __iter__(self) -> Iterator[bytes]:
        return iter(sorted(self._mapping))
