"""Reference model of the chunk store: a dict of fresh locators.

Specifies ``PUT(data) -> locator`` / ``GET(locator) -> data`` (section 2.1)
with the simplest possible implementation, plus the invariant other code
relies on: **locators are never reused**.  The paper's issue #15 was a bug
in this very model -- the reference chunk store handed out non-unique
locators, which other code assumed were unique -- so the fault lives here,
in the specification artifact, and the conformance harness's invariant
check is what catches it.

The model is also the standard *mock* chunk store for LSM-tree unit tests
(the paper's Fig. 4 harness does the same: "the test mocks out the
persistent chunk storage that backs the LSM tree").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.shardstore.errors import NotFoundError
from repro.shardstore.faults import Fault, FaultSet


class ModelLocator(int):
    """Locators in the model are opaque integers."""

    __slots__ = ()


class ReferenceChunkStore:
    """Dict-backed specification of the chunk store."""

    def __init__(self, faults: Optional[FaultSet] = None) -> None:
        self.faults = faults or FaultSet.none()
        self._chunks: Dict[ModelLocator, bytes] = {}
        self._next = 0
        #: Every locator ever returned (for the uniqueness invariant).
        self.issued: List[ModelLocator] = []

    def put(self, data: bytes) -> ModelLocator:
        """Store ``data``; returns a fresh locator.

        Fault #15: the buggy model allocates locators from the *current
        size* of the store, so deleting a chunk lets a later put re-issue a
        previously returned locator.
        """
        if self.faults.enabled(Fault.MODEL_REUSES_LOCATORS):
            locator = ModelLocator(len(self._chunks))
        else:
            locator = ModelLocator(self._next)
            self._next += 1
        self._chunks[locator] = data
        self.issued.append(locator)
        return locator

    def get(self, locator: ModelLocator) -> bytes:
        if locator not in self._chunks:
            raise NotFoundError(f"no chunk at locator {int(locator)}")
        return self._chunks[locator]

    def delete(self, locator: ModelLocator) -> None:
        self._chunks.pop(locator, None)

    def contains(self, locator: ModelLocator) -> bool:
        return locator in self._chunks

    # -- background operations: no-ops in the specification -------------

    def reclaim(self) -> None:
        """No-op: reclamation must not change any readable chunk."""

    # -- invariants -------------------------------------------------------

    def locators_unique(self) -> bool:
        """The invariant issue #15 violated: no locator issued twice."""
        return len(self.issued) == len(set(self.issued))

    def __len__(self) -> int:
        return len(self._chunks)
