"""Executable reference models -- the specifications (section 3.2).

Each model provides the same interface as its ShardStore component with
the simplest possible implementation (a dict), is used as the oracle in
conformance property tests, and doubles as a mock in unit tests so the
engineering team keeps the specifications up to date.
"""

from .chunkstore import ModelLocator, ReferenceChunkStore
from .crash import AllowedState, CrashAwareModel, LoggedOp
from .index import ReferenceIndex
from .kvstore import ReferenceKvStore

__all__ = [
    "AllowedState",
    "CrashAwareModel",
    "LoggedOp",
    "ModelLocator",
    "ReferenceChunkStore",
    "ReferenceIndex",
    "ReferenceKvStore",
]
