"""Reference model of the index component: a hash map (section 3.2).

The paper's example: "for the index component that maps shard identifiers
to chunk locators, we define a reference model that uses a simple hash
table to store the mapping, rather than the persistent LSM-tree".

This model provides the same interface as :class:`repro.shardstore.lsm.
LsmIndex`'s key-value surface and is used two ways, exactly as in the
paper:

* as the specification in the index conformance property test (Fig. 3);
* as a *mock* index in unit tests of components above the index, so
  engineers keep it up to date as a side effect of ordinary testing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.shardstore.chunk import Locator


class ReferenceIndex:
    """Hash-map specification of the LSM-tree index."""

    def __init__(self) -> None:
        self._mapping: Dict[bytes, List[Locator]] = {}

    def put(self, key: bytes, locators: List[Locator], data_dep=None) -> None:
        self._mapping[key] = list(locators)

    def delete(self, key: bytes) -> None:
        self._mapping.pop(key, None)

    def get(self, key: bytes) -> Optional[List[Locator]]:
        locators = self._mapping.get(key)
        return list(locators) if locators is not None else None

    def keys(self) -> List[bytes]:
        return sorted(self._mapping)

    def contains(self, key: bytes) -> bool:
        return key in self._mapping

    # -- background operations: no-ops in the specification -------------

    def flush(self) -> None:
        """No-op: flushing must not change the mapping."""

    def compact(self) -> None:
        """No-op: compaction must not change the mapping."""

    # -- reclamation support (mirrors LsmIndex's relocation interface) ---

    def replace_data_locator(
        self, key: bytes, old: Locator, new: Locator, new_dep=None
    ) -> bool:
        """Relocate one locator; returns False if the entry moved on."""
        locators = self._mapping.get(key)
        if locators is None or old not in locators:
            return False
        self._mapping[key] = [new if loc == old else loc for loc in locators]
        return True

    # -- model utilities -------------------------------------------------

    def mapping(self) -> Dict[bytes, List[Locator]]:
        return {k: list(v) for k, v in self._mapping.items()}

    def clone(self) -> "ReferenceIndex":
        out = ReferenceIndex()
        out._mapping = {k: list(v) for k, v in self._mapping.items()}
        return out

    def __len__(self) -> int:
        return len(self._mapping)
