"""Crash-aware reference model: what is allowed to be lost (section 5).

The plain reference model is too strong in the face of crashes -- soft
updates explicitly allow recent mutations to be lost.  This extension
tracks, for every mutating operation, the :class:`Dependency` the
implementation returned; after a crash it derives the paper's two
properties:

* **persistence** -- if an operation's dependency reported persistent
  before the crash, its effect must be readable after recovery *unless
  superseded by a later persisted operation*;
* **forward progress** -- after a clean (non-crashing) shutdown, every
  operation's dependency must report persistent.

Concretely, for each key the model computes the *allowed post-crash
observations*: the value of any operation at or after the key's latest
persistent operation (later, non-persisted operations may have partially
reached disk), with "absent" allowed only if one of those operations is a
delete or no operation ever persisted.

The paper's issue #9 -- "reference model was not updated correctly after a
crash during reclamation" -- was a bug in this artifact: enable
``Fault.MODEL_STALE_AFTER_CRASH_RECLAIM`` and :meth:`on_crash` wrongly
treats operations on keys relocated by an in-flight reclamation as
persistent, producing spurious persistence violations that the harness
reports (and that a developer then traces to the model, exactly as the
paper describes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from repro.shardstore.dependency import Dependency
from repro.shardstore.faults import Fault, FaultSet


@dataclass
class LoggedOp:
    """One mutating operation the implementation performed."""

    index: int
    key: bytes
    value: Optional[bytes]  # None is a delete
    dep: Dependency
    forced_persistent: bool = False  # fault #9's corruption of the model


@dataclass
class AllowedState:
    """The post-crash observations the specification permits for one key."""

    key: bytes
    values: Set[bytes]
    absent_allowed: bool

    def permits(self, observed: Optional[bytes]) -> bool:
        if observed is None:
            return self.absent_allowed
        return observed in self.values


class CrashAwareModel:
    """Reference model extended with dependency-based loss accounting."""

    def __init__(self, faults: Optional[FaultSet] = None) -> None:
        self.faults = faults or FaultSet.none()
        self._oplog: List[LoggedOp] = []

    # ------------------------------------------------------------------
    # recording

    def record_put(self, key: bytes, value: bytes, dep: Dependency) -> None:
        self._oplog.append(LoggedOp(len(self._oplog), key, value, dep))

    def record_delete(self, key: bytes, dep: Dependency) -> None:
        self._oplog.append(LoggedOp(len(self._oplog), key, None, dep))

    def on_crash(self, reclaim_touched_keys: Iterable[bytes]) -> None:
        """Called at each dirty reboot with the keys an in-flight (or most
        recent) reclamation relocated.

        The correct model needs to do nothing here -- dependency polling
        already accounts for what reclamation persisted.  Fault #9 instead
        marks those keys' latest operations as persistent regardless of
        their dependencies, the "model not updated correctly after a crash
        during reclamation" bug.
        """
        if not self.faults.enabled(Fault.MODEL_STALE_AFTER_CRASH_RECLAIM):
            return
        touched = set(reclaim_touched_keys)
        for op in reversed(self._oplog):
            if op.key in touched:
                op.forced_persistent = True
                touched.discard(op.key)
            if not touched:
                break

    # ------------------------------------------------------------------
    # specification queries

    def _is_persistent(self, op: LoggedOp) -> bool:
        return op.forced_persistent or op.dep.is_persistent()

    def tracked_keys(self) -> List[bytes]:
        return sorted({op.key for op in self._oplog})

    def allowed_after_crash(self, key: bytes) -> AllowedState:
        """The persistence property's allowed observations for ``key``."""
        ops = [op for op in self._oplog if op.key == key]
        last_persistent = None
        for op in ops:
            if self._is_persistent(op):
                last_persistent = op.index
        values: Set[bytes] = set()
        absent_allowed = last_persistent is None
        for op in ops:
            if last_persistent is not None and op.index < last_persistent:
                continue
            if op.value is None:
                absent_allowed = True
            else:
                values.add(op.value)
        return AllowedState(key=key, values=values, absent_allowed=absent_allowed)

    def expected_after_clean_shutdown(self, key: bytes) -> Optional[bytes]:
        """After a clean shutdown the *latest* operation must be visible."""
        ops = [op for op in self._oplog if op.key == key]
        if not ops:
            return None
        return ops[-1].value

    def unpersisted_ops(self) -> List[LoggedOp]:
        """Operations whose dependency is not persistent -- must be empty
        after a clean shutdown (the forward-progress property)."""
        return [op for op in self._oplog if not self._is_persistent(op)]

    @property
    def op_count(self) -> int:
        return len(self._oplog)
