"""Trace-conformance checker: replay an op journal against the model.

This is the "eXtreme Modelling" side of the evidence plane: any live run
that produced a journal -- ``repro bench``, the metrics demo node, a
campaign shard -- becomes conformance evidence *after the fact*, without
re-running it.  The checker replays every journaled operation against the
flat :class:`~repro.models.kvstore.ReferenceKvStore` specification (over
key/value *digests*; journals never carry raw bytes):

* ``put``/``get``/``delete``/``contains``/``keys`` outcomes must agree
  with the model;
* typed sheds (``shed_overload``/``shed_deadline``) are raised **before
  any substrate IO**, so a shed op must provably not have mutated state;
* ``error:*`` outcomes leave the op's effect *uncertain*: the key's
  possible states widen to cover both applied and not-applied, and the
  next successful observation collapses them;
* crash semantics: a ``dirty`` reboot widens every key mutated since the
  last durability barrier (a clean reboot, or a ``flush`` followed by a
  quiescent ``drain``) to the set of values it held since that barrier.

The candidate-set treatment keeps the checker *sound* (a reported
violation is a real divergence between journal and specification) while
staying useful under fault injection and crash workloads.

The checker also enforces the promoted invariant set inline: the hash
chain must verify, op ids must be strictly monotone, and logical ticks
must be non-decreasing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.models.kvstore import ReferenceKvStore
from repro.shardstore.observability.journal import (
    GENESIS_CHAIN,
    canonical_json,
    chain_digest,
    digest_key_digests,
    read_journal,
)

__all__ = ["ABSENT", "CheckReport", "TraceChecker", "check_file", "check_journal"]

#: Sentinel "value" meaning the key is absent (not a hex digest).
ABSENT = "<absent>"

#: Cap on retained violation detail records (the count keeps counting).
MAX_VIOLATIONS = 64

#: Outcomes that must not have touched state (shed before any IO).
_SHED_OUTCOMES = ("shed_overload", "shed_deadline")


@dataclass
class CheckReport:
    """The verdict of one journal replay."""

    records: int = 0
    ops: int = 0
    checked: int = 0  # ops that carried a state assertion
    skipped: int = 0  # checks skipped for soundness (crash uncertainty)
    sheds: int = 0
    violation_count: int = 0
    violations: List[Dict[str, Any]] = field(default_factory=list)
    chain_ok: bool = True
    sealed: bool = False
    head: str = GENESIS_CHAIN

    @property
    def passed(self) -> bool:
        return self.violation_count == 0

    def to_json(self) -> Dict[str, Any]:
        return {
            "passed": self.passed,
            "records": self.records,
            "ops": self.ops,
            "checked": self.checked,
            "skipped": self.skipped,
            "sheds": self.sheds,
            "chain_ok": self.chain_ok,
            "sealed": self.sealed,
            "head": self.head,
            "violation_count": self.violation_count,
            "violations": list(self.violations),
        }


class TraceChecker:
    """Incremental journal replayer; feed records in write order.

    Also usable live: the metrics demo node feeds its in-memory journal's
    records as they are produced and exports the running violation count
    as a gauge.
    """

    def __init__(self) -> None:
        self.model = ReferenceKvStore()
        self.report = CheckReport()
        # Keys whose current value is uncertain: digest -> candidate set.
        self._maybe: Dict[str, Set[str]] = {}
        # Per-key values written since the last durability barrier, and the
        # candidate snapshot from just before the first such write.
        self._written: Dict[str, Set[str]] = {}
        self._base: Dict[str, Set[str]] = {}
        self._counts: Dict[str, int] = {}
        self._chain = GENESIS_CHAIN
        self._last_op_id = 0
        self._last_tick: Optional[int] = None
        self._last_flush = -1
        self._last_mutation = 0
        self._index = -1
        self._sealed_at: Optional[int] = None

    # ------------------------------------------------------------------
    # model helpers (digest-level view of ReferenceKvStore)

    def _model_get(self, kd: str) -> str:
        key = kd.encode("ascii")
        if self.model.contains(key):
            return self.model.get(key).decode("ascii")
        return ABSENT

    def _current(self, kd: str) -> Set[str]:
        if kd in self._maybe:
            return set(self._maybe[kd])
        return {self._model_get(kd)}

    def _set_certain(self, kd: str, vd: str) -> None:
        self._maybe.pop(kd, None)
        key = kd.encode("ascii")
        if vd == ABSENT:
            if self.model.contains(key):
                self.model.delete(key)
        else:
            self.model.put(key, vd.encode("ascii"))

    def _snapshot_base(self, kd: str) -> None:
        if kd not in self._written:
            self._base[kd] = self._current(kd)
            self._written[kd] = set()

    def _mutate(self, kd: str, vd: str) -> None:
        """A certain write: the op provably applied."""
        self._snapshot_base(kd)
        self._written[kd].add(vd)
        self._set_certain(kd, vd)
        self._last_mutation = self._index

    def _weak_mutate(self, kd: str, vd: str) -> None:
        """An ``error:*`` write: may or may not have applied."""
        self._snapshot_base(kd)
        self._written[kd].add(vd)
        self._maybe[kd] = self._current(kd) | {vd}
        self._last_mutation = self._index

    def _observe(self, entry: Dict[str, Any], kd: str, vd: str) -> None:
        current = self._current(kd)
        self.report.checked += 1
        if vd not in current:
            expected = ", ".join(sorted(current)) or ABSENT
            self._violate(
                entry,
                f"observed {vd!r} but the model allows only {{{expected}}}",
            )
            return
        self._set_certain(kd, vd)

    def _observe_presence(self, entry: Dict[str, Any], kd: str, present: bool) -> None:
        current = self._current(kd)
        self.report.checked += 1
        if present:
            values = {v for v in current if v != ABSENT}
            if not values:
                self._violate(entry, "reported present but the model says absent")
            elif len(values) == 1:
                self._set_certain(kd, next(iter(values)))
            else:
                self._maybe[kd] = values
        else:
            if ABSENT not in current:
                self._violate(entry, "reported absent but the model says present")
            else:
                self._set_certain(kd, ABSENT)

    def _barrier(self) -> None:
        """Everything written so far is durable: crash uncertainty resets."""
        self._written.clear()
        self._base.clear()

    def _crash(self) -> None:
        """A dirty reboot: keys mutated since the barrier may have lost
        writes; each widens to every value it held since then."""
        for kd, written in self._written.items():
            candidates = self._current(kd) | written | self._base.get(kd, set())
            if len(candidates) == 1:
                self._set_certain(kd, next(iter(candidates)))
            else:
                self._maybe[kd] = candidates
        self._written.clear()
        self._base.clear()

    def _violate(self, entry: Dict[str, Any], problem: str) -> None:
        self.report.violation_count += 1
        if len(self.report.violations) < MAX_VIOLATIONS:
            self.report.violations.append(
                {
                    "record": self._index,
                    "op": entry.get("op"),
                    "tick": entry.get("tick"),
                    "kind": entry.get("kind"),
                    "key": entry.get("key"),
                    "out": entry.get("out"),
                    "problem": problem,
                }
            )

    # ------------------------------------------------------------------
    # record feed

    def feed(self, entry: Dict[str, Any]) -> None:
        """Replay one journal record (in write order)."""
        self._index += 1
        self.report.records += 1
        self._feed_chain(entry)
        kind = entry.get("kind")
        if self._sealed_at is not None:
            self._violate(entry, "record appears after the seal")
            return
        if kind == "genesis":
            if self._index != 0:
                self._violate(entry, "genesis record is not first")
            return
        if self._index == 0:
            self._violate(entry, "journal does not start with a genesis record")
        self._feed_sequencing(entry)
        if kind == "seal":
            self._feed_seal(entry)
            return
        out = entry.get("out", "ok")
        self._bump(kind, out)
        if kind == "breaker":
            return  # evidence for the miner; no key-value state effect
        self.report.ops += 1
        if out in _SHED_OUTCOMES:
            # Sheds fire before any substrate IO: provably no state change.
            self.report.sheds += 1
            self.report.checked += 1
            return
        handler = getattr(self, f"_op_{kind}", None)
        if handler is not None:
            handler(entry, out)

    def _feed_chain(self, entry: Dict[str, Any]) -> None:
        stored = entry.get("chain")
        body = {name: val for name, val in entry.items() if name != "chain"}
        expected = chain_digest(self._chain, canonical_json(body))
        if stored != expected:
            self.report.chain_ok = False
            self._violate(
                entry,
                "chain digest mismatch: record tampered, reordered, or a "
                "predecessor deleted",
            )
            self._chain = stored if isinstance(stored, str) else expected
        else:
            self._chain = expected
        self.report.head = self._chain

    def _feed_sequencing(self, entry: Dict[str, Any]) -> None:
        op_id = entry.get("op")
        if isinstance(op_id, int):
            if op_id <= self._last_op_id:
                self._violate(
                    entry, f"op id {op_id} not above predecessor {self._last_op_id}"
                )
            self._last_op_id = max(self._last_op_id, op_id)
        tick = entry.get("tick")
        if isinstance(tick, int):
            if self._last_tick is not None and tick < self._last_tick:
                self._violate(
                    entry, f"tick {tick} went backwards (was {self._last_tick})"
                )
            self._last_tick = max(self._last_tick or 0, tick)

    def _feed_seal(self, entry: Dict[str, Any]) -> None:
        self._sealed_at = self._index
        self.report.sealed = True
        counts = entry.get("counts")
        if isinstance(counts, dict):
            mismatches = [
                name
                for name in set(counts) | set(self._counts)
                if counts.get(name, 0) != self._counts.get(name, 0)
            ]
            if mismatches:
                self._violate(
                    entry,
                    "seal counter relations do not match the replay: "
                    + ", ".join(sorted(mismatches)),
                )
        records = entry.get("records")
        if isinstance(records, int) and records != self._index + 1:
            self._violate(
                entry,
                f"seal claims {records} records but {self._index + 1} were fed",
            )

    def _bump(self, kind: Any, out: str) -> None:
        name = f"{kind}:{out}"
        self._counts[name] = self._counts.get(name, 0) + 1

    # ------------------------------------------------------------------
    # per-kind semantics

    def _op_put(self, entry: Dict[str, Any], out: str) -> None:
        kd, vd = entry.get("key"), entry.get("value")
        if kd is None or vd is None:
            self._violate(entry, "put record missing key/value digest")
            return
        if out == "ok":
            self._mutate(kd, vd)
            self.report.checked += 1
        elif out.startswith("error:"):
            self._weak_mutate(kd, vd)
        else:
            self._violate(entry, f"impossible put outcome {out!r}")

    def _op_get(self, entry: Dict[str, Any], out: str) -> None:
        kd = entry.get("key")
        if kd is None:
            self._violate(entry, "get record missing key digest")
            return
        if out == "ok":
            vd = entry.get("value")
            if vd is None:
                self._violate(entry, "get ok record missing value digest")
                return
            self._observe(entry, kd, vd)
        elif out == "not_found":
            self._observe(entry, kd, ABSENT)
        # error:* makes no state claim (the read failed).

    def _op_delete(self, entry: Dict[str, Any], out: str) -> None:
        kd = entry.get("key")
        if kd is None:
            self._violate(entry, "delete record missing key digest")
            return
        if out == "ok":
            current = self._current(kd)
            self.report.checked += 1
            if not any(v != ABSENT for v in current):
                self._violate(
                    entry, "delete succeeded but the model says the key is absent"
                )
                return
            self._mutate(kd, ABSENT)
        elif out == "not_found":
            self._observe(entry, kd, ABSENT)
        elif out.startswith("error:"):
            self._weak_mutate(kd, ABSENT)

    def _op_contains(self, entry: Dict[str, Any], out: str) -> None:
        kd = entry.get("key")
        if out == "ok" and kd is not None:
            self._observe_presence(entry, kd, bool(entry.get("result")))

    def _op_keys(self, entry: Dict[str, Any], out: str) -> None:
        if out != "ok":
            return
        if self._maybe:
            # Some key's presence is crash-uncertain: a set-level digest
            # comparison would not be sound, so skip (counted).
            self.report.skipped += 1
            return
        expected_keys = sorted(k.decode("ascii") for k in self.model.keys())
        self.report.checked += 1
        n = entry.get("n")
        if isinstance(n, int) and n != len(expected_keys):
            self._violate(
                entry,
                f"keys reported {n} entries but the model has "
                f"{len(expected_keys)}",
            )
            return
        digest = entry.get("keys_digest")
        if digest is not None and digest != digest_key_digests(expected_keys):
            self._violate(entry, "keys digest differs from the model's key set")

    def _op_flush(self, entry: Dict[str, Any], out: str) -> None:
        if out == "ok":
            self._last_flush = self._index

    def _op_drain(self, entry: Dict[str, Any], out: str) -> None:
        # A drain that completed after a flush, with no mutation in
        # between, is a durability barrier: everything previously written
        # is on the medium.
        if out == "ok" and self._last_flush > self._last_mutation:
            self._barrier()

    def _op_reboot(self, entry: Dict[str, Any], out: str) -> None:
        mode = entry.get("mode")
        if out == "ok" and mode == "clean":
            self._barrier()
        else:
            # Dirty reboot, re-entrant recovery, or a reboot that errored:
            # all widen crash uncertainty.
            self._crash()

    def _op_scrub_repair(self, entry: Dict[str, Any], out: str) -> None:
        if out != "ok":
            return
        # Quarantine removes unrecoverable keys from the index.  Treated
        # as a *weak* delete: under fault injection a partially-failing
        # disk may have quarantined keys that never made the report, so
        # widening (rather than asserting) stays sound; the next
        # observation collapses it.
        for kd in entry.get("quarantined") or []:
            self._snapshot_base(kd)
            self._written[kd].add(ABSENT)
            self._maybe[kd] = self._current(kd) | {ABSENT}
        # Repairs rewrite the same value: no model effect.

    # Control-plane ops with no key-value mapping effect (the reference
    # model treats migration and disk service changes as no-ops).
    def _op_migrate(self, entry: Dict[str, Any], out: str) -> None:
        pass

    def _op_remove_disk(self, entry: Dict[str, Any], out: str) -> None:
        pass

    def _op_return_disk(self, entry: Dict[str, Any], out: str) -> None:
        pass

    def _op_bulk_create(self, entry: Dict[str, Any], out: str) -> None:
        items = entry.get("items") or []
        if out == "ok":
            self.report.checked += 1
            for kd, vd in items:
                self._mutate(kd, vd)
        elif out.startswith("error:"):
            for kd, vd in items:
                self._weak_mutate(kd, vd)

    def _op_bulk_delete(self, entry: Dict[str, Any], out: str) -> None:
        items = entry.get("items") or []
        if out == "ok":
            self.report.checked += 1
            for kd in items:
                # bulk_delete skips absent keys silently (atomic best
                # effort): present keys are removed, absent keys ignored.
                if any(v != ABSENT for v in self._current(kd)):
                    self._mutate(kd, ABSENT)
        elif out.startswith("error:"):
            for kd in items:
                self._weak_mutate(kd, ABSENT)

    # ------------------------------------------------------------------

    def finish(self, *, require_seal: bool = False) -> CheckReport:
        """Final verdict; with ``require_seal`` an unsealed journal (a
        truncated tail) is itself a violation."""
        if require_seal and not self.report.sealed:
            self.report.violation_count += 1
            self.report.violations.append(
                {
                    "record": self._index,
                    "op": None,
                    "tick": None,
                    "kind": "seal",
                    "key": None,
                    "out": None,
                    "problem": "journal has no seal record (truncated tail?)",
                }
            )
        return self.report


def check_journal(
    entries: List[Dict[str, Any]], *, require_seal: bool = False
) -> CheckReport:
    """Replay a parsed journal and return the verdict."""
    checker = TraceChecker()
    for entry in entries:
        checker.feed(entry)
    return checker.finish(require_seal=require_seal)


def check_file(path: str, *, require_seal: bool = False) -> CheckReport:
    """Replay a journal file and return the verdict."""
    return check_journal(read_journal(path), require_seal=require_seal)
