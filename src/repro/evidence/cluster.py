"""Merged multi-journal trace checking for the cluster layer.

A cluster run produces one journal per storage node plus one for the
router (each with a distinct identity in its chain genesis and every
record body).  This checker replays the *router* journal -- the
cluster-level op stream, each record carrying its replica ack set -- under
cross-node candidate-set semantics, and uses the per-node journals for
two things the router journal alone cannot prove:

* **chain integrity per node** -- every journal's hash chain must verify
  independently (the node id participates in the chain, so journals
  cannot be spliced);
* **ack corroboration** -- an acknowledged quorum write must actually
  appear in the journal of every acking node, matched by the cluster op
  id (``cop``) the router stamped on the replica-side record, with the
  same value digest.  A router that claimed an ack no node journal backs
  is a consistency violation, not a formatting problem.

Candidate-set semantics (the cluster analogue of
:mod:`repro.evidence.checker`):

* an **acknowledged** write (``out=ok``, ``len(acks) >= want``) is
  certain, and must *survive any minority of node crashes*: crash
  records only widen a key when the crashed set covers the key's entire
  ack set AND has grown past a minority -- which the storm planner never
  does, so widening here on a real trace means the plan itself was
  illegal;
* an **unacknowledged** write (``error:DegradedWriteError``) with a
  non-empty ack list widens the key to {applied, not-applied}; with an
  *empty* ack list it provably did not touch any replica (the cluster
  analogue of a typed shed) and the key stays certain;
* a quorum read narrows an uncertain key only when it observed the
  *newest* candidate version: observing the older branch is consistent
  with the newer value still surfacing later via hinted handoff or
  read-repair, so it must not collapse the set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.shardstore.observability.journal import (
    read_journal,
    verify_chain,
)

from .checker import ABSENT, MAX_VIOLATIONS

__all__ = [
    "ClusterCheckReport",
    "check_cluster_files",
    "check_cluster_journals",
]

#: Router-journal record kinds that mutate cluster placement/liveness
#: bookkeeping but never key state.
_EVENT_KINDS = (
    "crash",
    "restart",
    "partition",
    "partition_heal",
    "slow",
    "demote",
    "readmit",
    "join",
    "leave",
    "hint_replay",
    "read_repair",
    "rebalance",
    "keys",
    # Anti-entropy evidence (PR 9): settle anchors, per-round sync
    # summaries, and the placement-group root verdict.  Background
    # repairs flow through the replica-apply path, so the replayer sees
    # their effects as ordinary member-journal puts corroborated by the
    # candidate-set semantics -- these records are narration, not state.
    "settle",
    "anti_entropy",
    "merkle_roots",
)


@dataclass
class ClusterCheckReport:
    """The verdict of one merged cluster replay."""

    journals: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    records: int = 0
    ops: int = 0
    checked: int = 0
    skipped: int = 0
    corroborated: int = 0  # acked replica writes matched in node journals
    crashes: int = 0
    violation_count: int = 0
    violations: List[Dict[str, Any]] = field(default_factory=list)
    chain_ok: bool = True
    sealed: bool = False  # every journal sealed

    @property
    def passed(self) -> bool:
        return self.violation_count == 0

    def to_json(self) -> Dict[str, Any]:
        return {
            "passed": self.passed,
            "journals": {
                name: dict(info) for name, info in sorted(self.journals.items())
            },
            "records": self.records,
            "ops": self.ops,
            "checked": self.checked,
            "skipped": self.skipped,
            "corroborated": self.corroborated,
            "crashes": self.crashes,
            "chain_ok": self.chain_ok,
            "sealed": self.sealed,
            "violation_count": self.violation_count,
            "violations": list(self.violations),
        }


def _journal_identity(entries: List[Dict[str, Any]]) -> Tuple[str, Dict[str, Any]]:
    if not entries or entries[0].get("kind") != "genesis":
        return "", {}
    meta = entries[0].get("meta") or {}
    return str(meta.get("node", "")), meta


class _ClusterReplay:
    def __init__(self, require_seal: bool) -> None:
        self.require_seal = require_seal
        self.report = ClusterCheckReport()
        # key digest -> candidate value digests (ABSENT allowed) -> version
        self._state: Dict[str, Dict[str, int]] = {}
        # key digest -> ack node set of the last acknowledged write
        self._acks: Dict[str, Set[int]] = {}
        # keys widened past recovery (majority-crash safety net)
        self._wild: Set[str] = set()
        self._dead: Set[int] = set()
        self._cfg: Dict[str, Any] = {}
        # node identity -> cop -> list of replica-side records
        self._node_cops: Dict[str, Dict[int, List[Dict[str, Any]]]] = {}

    # ------------------------------------------------------------------

    def _violate(self, entry: Dict[str, Any], problem: str) -> None:
        self.report.violation_count += 1
        if len(self.report.violations) < MAX_VIOLATIONS:
            self.report.violations.append(
                {
                    "op": entry.get("op"),
                    "tick": entry.get("tick"),
                    "kind": entry.get("kind"),
                    "node": entry.get("node"),
                    "key": entry.get("key"),
                    "problem": problem,
                }
            )

    def _verify_journal(
        self, name: str, entries: List[Dict[str, Any]]
    ) -> None:
        problems = verify_chain(entries)
        sealed = bool(entries) and entries[-1].get("kind") == "seal"
        info = {
            "records": len(entries),
            "chain_ok": not problems,
            "sealed": sealed,
            "head": entries[-1].get("chain") if entries else None,
        }
        self.report.journals[name] = info
        self.report.records += len(entries)
        if problems:
            self.report.chain_ok = False
            for problem in problems[:4]:
                self._violate({"node": name}, f"chain: {problem}")
        if self.require_seal and not sealed:
            self._violate(
                {"node": name}, "journal is not sealed (truncated tail?)"
            )
        last_op = 0
        for entry in entries:
            op_id = entry.get("op")
            if isinstance(op_id, int):
                if op_id <= last_op:
                    self._violate(
                        entry,
                        f"op id {op_id} not monotone within journal {name}",
                    )
                last_op = max(last_op, op_id)
            node = entry.get("node")
            if entry.get("kind") != "genesis" and node != name and name:
                self._violate(
                    entry,
                    f"record claims node {node!r} inside journal {name!r}",
                )

    def _index_node_journal(
        self, name: str, entries: List[Dict[str, Any]]
    ) -> None:
        cops: Dict[int, List[Dict[str, Any]]] = {}
        for entry in entries:
            cop = entry.get("cop")
            if isinstance(cop, int) and cop > 0:
                cops.setdefault(cop, []).append(entry)
        self._node_cops[name] = cops

    # ------------------------------------------------------------------
    # candidate-set state

    def _candidates(self, kd: str) -> Optional[Dict[str, int]]:
        return self._state.get(kd)

    def _set_certain(self, kd: str, vd: str, ver: int) -> None:
        self._state[kd] = {vd: ver}
        self._wild.discard(kd)

    def _widen(self, kd: str, vd: str, ver: int) -> None:
        self._state.setdefault(kd, {ABSENT: -1})[vd] = ver

    def _minority(self) -> int:
        nodes = int(self._cfg.get("nodes", 0))
        return max(0, (nodes - 1) // 2)

    # ------------------------------------------------------------------
    # record handlers

    def _corroborate(
        self, entry: Dict[str, Any], acks: List[int], vd: Optional[str]
    ) -> None:
        cop = entry.get("cop")
        if not isinstance(cop, int):
            self._violate(entry, "acknowledged write carries no cop")
            return
        for nid in acks:
            name = f"node{nid}"
            matches = self._node_cops.get(name, {}).get(cop, [])
            applied = [
                rec
                for rec in matches
                if rec.get("kind") == "put" and rec.get("out") == "ok"
            ]
            if not applied:
                self._violate(
                    entry,
                    f"ack by node {nid} has no matching replica put "
                    f"(cop {cop}) in its journal",
                )
                continue
            if vd is not None and all(
                rec.get("value") != vd for rec in applied
            ):
                self._violate(
                    entry,
                    f"node {nid}'s replica put for cop {cop} carries a "
                    f"different value digest",
                )
                continue
            self.report.corroborated += 1

    def _handle_write(self, entry: Dict[str, Any], tombstone: bool) -> None:
        kd = entry.get("key")
        out = entry.get("out", "ok")
        ver = entry.get("ver", -1)
        vd = ABSENT if tombstone else entry.get("value")
        acks = [a for a in (entry.get("acks") or []) if isinstance(a, int)]
        want = entry.get("want", 0)
        if kd is None:
            return
        if out == "ok":
            if len(acks) < int(want):
                self._violate(
                    entry,
                    f"acknowledged with {len(acks)} acks but quorum is {want}",
                )
            if not tombstone and vd is None:
                self._violate(entry, "acknowledged put carries no value digest")
                return
            self.report.checked += 1
            self._set_certain(kd, vd if vd is not None else ABSENT, int(ver))
            self._acks[kd] = set(acks)
            self._corroborate(
                entry, acks, None if tombstone else vd
            )
        elif out == "error:DegradedWriteError":
            if not acks:
                # No replica applied it: provably state-preserving.
                self.report.checked += 1
                return
            self._widen(kd, vd if vd is not None else ABSENT, int(ver))
        elif out == "not_found":
            # delete of an absent key: an observation of absence.
            self._observe_absent(entry, kd)
        elif out.startswith("error:"):
            self.report.skipped += 1
        # shed outcomes are impossible at the router (sheds happen at
        # replicas and simply cost the write an ack).

    def _observe_absent(self, entry: Dict[str, Any], kd: str) -> None:
        cands = self._candidates(kd)
        if cands is None or kd in self._wild:
            return
        self.report.checked += 1
        if ABSENT not in cands:
            expected = ", ".join(sorted(cands))
            self._violate(
                entry,
                f"observed absent but the model allows only {{{expected}}}",
            )

    def _handle_get(self, entry: Dict[str, Any]) -> None:
        kd = entry.get("key")
        out = entry.get("out", "ok")
        if kd is None:
            return
        if out == "not_found":
            self._observe_absent(entry, kd)
            return
        if out != "ok":
            self.report.skipped += 1
            return
        vd = entry.get("value")
        ver = entry.get("ver", -1)
        cands = self._candidates(kd)
        if vd is None:
            return
        if cands is None or kd in self._wild:
            # First sight of a key (or one lost to a majority crash):
            # learn, don't judge.
            self._set_certain(kd, vd, int(ver))
            return
        self.report.checked += 1
        if vd not in cands:
            expected = ", ".join(sorted(cands))
            self._violate(
                entry,
                f"observed {vd!r} but the model allows only {{{expected}}}",
            )
            return
        newest = max(cands.values())
        if cands[vd] >= newest:
            # Observed the newest branch: the candidate set collapses.
            self._set_certain(kd, vd, cands[vd])

    def _handle_contains(self, entry: Dict[str, Any]) -> None:
        kd = entry.get("key")
        if kd is None or entry.get("out") != "ok":
            return
        cands = self._candidates(kd)
        if cands is None or kd in self._wild:
            return
        self.report.checked += 1
        exists = bool(entry.get("exists"))
        present = {vd for vd in cands if vd != ABSENT}
        if exists and not present:
            self._violate(entry, "reported present but the model says absent")
        elif not exists and ABSENT not in cands:
            self._violate(entry, "reported absent but the model says present")

    def _handle_crash(self, entry: Dict[str, Any]) -> None:
        target = entry.get("target")
        if not isinstance(target, int):
            return
        self._dead.add(target)
        self.report.crashes += 1
        if len(self._dead) <= self._minority():
            # An acknowledged write must survive any minority of crashes:
            # nothing widens.
            return
        # Majority down: soundness requires widening every key whose
        # entire ack set is dead (its acked value may not survive).
        for kd, acks in self._acks.items():
            if acks and acks.issubset(self._dead):
                self._wild.add(kd)

    # ------------------------------------------------------------------

    def replay_router(self, entries: List[Dict[str, Any]]) -> None:
        for entry in entries:
            kind = entry.get("kind")
            if kind in ("genesis", "seal"):
                continue
            self.report.ops += 1
            if kind == "put":
                self._handle_write(entry, tombstone=False)
            elif kind == "delete":
                self._handle_write(entry, tombstone=True)
            elif kind == "get":
                self._handle_get(entry)
            elif kind == "contains":
                self._handle_contains(entry)
            elif kind == "crash":
                self._handle_crash(entry)
            elif kind == "restart":
                target = entry.get("target")
                if isinstance(target, int):
                    self._dead.discard(target)
            elif kind in _EVENT_KINDS:
                continue
            else:
                self._violate(entry, f"unknown router record kind {kind!r}")


def check_cluster_journals(
    journal_entries: List[List[Dict[str, Any]]],
    *,
    require_seal: bool = False,
) -> ClusterCheckReport:
    """Replay merged cluster journals (one router + N node journals)."""
    replay = _ClusterReplay(require_seal)
    report = replay.report
    router: Optional[List[Dict[str, Any]]] = None
    for entries in journal_entries:
        name, meta = _journal_identity(entries)
        if not name:
            replay._violate(
                {}, "journal has no genesis identity (not a cluster journal?)"
            )
            continue
        replay._verify_journal(name, entries)
        if meta.get("role") == "router":
            if router is not None:
                replay._violate({}, "more than one router journal supplied")
            router = entries
            replay._cfg = meta
        else:
            replay._index_node_journal(name, entries)
    if router is None:
        replay._violate({}, "no router journal supplied (meta.role=router)")
    else:
        replay.replay_router(router)
    report.sealed = bool(report.journals) and all(
        info["sealed"] for info in report.journals.values()
    )
    return report


def check_cluster_files(
    paths: List[str], *, require_seal: bool = False
) -> ClusterCheckReport:
    """Read and replay cluster journal files together."""
    return check_cluster_journals(
        [read_journal(path) for path in paths], require_seal=require_seal
    )
