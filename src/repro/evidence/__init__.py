"""The evidence plane's offline tooling: journal checking and mining.

The :mod:`repro.shardstore.observability.journal` module produces a
chained JSONL log of every client-visible operation; this package turns
such a log into *proof*:

* :mod:`repro.evidence.checker` -- ``repro check-trace``: replay a journal
  against the flat :class:`~repro.models.kvstore.ReferenceKvStore`
  specification, offline.  Puts/gets/deletes must agree with the model,
  typed sheds must provably not have mutated state, and crash semantics
  (dirty reboots) are handled with sound per-key candidate sets.
* :mod:`repro.evidence.cluster` -- ``repro check-trace`` with several
  journals: merge one router journal plus N per-node journals from a
  cluster run, verify every chain independently, replay the router's op
  stream under cross-node candidate-set semantics (unacknowledged quorum
  writes widen, acknowledged ones must survive any minority of node
  crashes) and corroborate every claimed replica ack against the acking
  node's own journal by cluster op id.
* :mod:`repro.evidence.invariants` -- ``repro invariants``: mine
  Daikon-style candidate properties from journals (monotone op ids,
  get-after-put agreement, shed-implies-no-state-change, breaker
  state-machine legality, counter relations) and report each as confirmed
  (with instance counts) or falsified (with a witness tick).

The curated *promoted* invariant set (:data:`~repro.evidence.invariants.
PROMOTED`) is enforced by the checker on every run.
"""

from .checker import CheckReport, TraceChecker, check_file, check_journal
from .cluster import (
    ClusterCheckReport,
    check_cluster_files,
    check_cluster_journals,
)
from .invariants import (
    PROMOTED,
    InvariantResult,
    mine_file,
    mine_journal,
    mine_journals,
)

__all__ = [
    "CheckReport",
    "ClusterCheckReport",
    "InvariantResult",
    "PROMOTED",
    "TraceChecker",
    "check_cluster_files",
    "check_cluster_journals",
    "check_file",
    "check_journal",
    "mine_file",
    "mine_journal",
    "mine_journals",
]
