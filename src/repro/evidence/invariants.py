"""Daikon-style invariant mining over op journals.

Where the checker (:mod:`repro.evidence.checker`) asks *"does this trace
conform to the specification?"*, the miner asks *"what properties does
this trace exhibit?"*.  Each template below is a candidate invariant
evaluated against every journal record; the miner reports each as

* ``confirmed`` -- held at every one of its ``instances`` check sites;
* ``falsified`` -- violated at least once, with the first witness op id
  and logical tick;
* ``vacuous`` -- the journal never exercised the template (zero
  instances), so it says nothing either way.

The :data:`PROMOTED` set is the curated subset that has been confirmed
across healthy bench, campaign, and crash-recovery journals and is
enforced in CI: ``repro invariants`` exits non-zero if any promoted
invariant is falsified.  The remaining templates are exploratory --
useful evidence when triaging a flagged journal, but not gating.

The miner deliberately uses *simpler, stricter* state tracking than the
checker (no candidate sets): between error outcomes and dirty reboots it
assumes writes apply exactly.  It resets its per-key knowledge at every
uncertainty boundary, so on a healthy journal the strict templates are
still sound, while on a faulty one the checker remains the arbiter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.shardstore.observability.journal import read_journal, verify_chain

__all__ = [
    "InvariantResult",
    "PROMOTED",
    "mine_file",
    "mine_journal",
    "mine_journals",
]

#: The curated invariant set enforced in CI (falsified => exit 1).
PROMOTED = (
    "op-monotone",
    "tick-monotone",
    "chain-intact",
    "get-after-put",
    "delete-implies-absent",
    "shed-no-state-change",
    # After a router `settle` record, the next `merkle_roots` record must
    # report converged replicas -- the anti-entropy settlement contract.
    # Vacuous on journals without anti-entropy evidence, so promoting it
    # cannot flag pre-PR-9 artifacts.
    "roots-converge-after-settle",
)

#: Exploratory templates, reported but not gating.
EXPLORATORY = (
    "breaker-legality",
    "seal-counts",
)

ALL_TEMPLATES = PROMOTED + EXPLORATORY

#: Legal circuit-breaker transitions (see resilience.CircuitBreaker).
_BREAKER_EDGES = {
    ("closed", "open"),
    ("closed", "slow"),
    ("open", "half-open"),
    ("slow", "half-open"),
    ("half-open", "probation"),
    ("half-open", "open"),
    ("half-open", "slow"),
    ("probation", "closed"),
    ("probation", "open"),
}

#: Sentinel for "key known absent" in the miner's strict per-key state.
_ABSENT = "<absent>"

_SHEDS = ("shed_overload", "shed_deadline")


@dataclass
class InvariantResult:
    """The fate of one candidate invariant over one or more journals."""

    name: str
    status: str  # "confirmed" | "falsified" | "vacuous"
    instances: int = 0
    witness_op: Optional[int] = None
    witness_tick: Optional[int] = None
    detail: str = ""
    #: Which journal identity produced the witness (the record's ``node``
    #: field).  Op ids are only per-journal monotone, so when several
    #: node journals are mined together the op id alone is ambiguous --
    #: this attributes the witness to the node that wrote it.
    witness_node: Optional[str] = None

    @property
    def promoted(self) -> bool:
        return self.name in PROMOTED

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "status": self.status,
            "promoted": self.promoted,
            "instances": self.instances,
        }
        if self.witness_op is not None:
            out["witness_op"] = self.witness_op
        if self.witness_tick is not None:
            out["witness_tick"] = self.witness_tick
        if self.witness_node is not None:
            out["witness_node"] = self.witness_node
        if self.detail:
            out["detail"] = self.detail
        return out


class _Template:
    """One candidate invariant's accumulator."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.instances = 0
        self.witness: Optional[
            Tuple[Optional[int], Optional[int], str, Optional[str]]
        ] = None

    def check(self, held: bool, entry: Dict[str, Any], detail: str) -> None:
        self.instances += 1
        if not held and self.witness is None:
            self.witness = (
                entry.get("op"),
                entry.get("tick"),
                detail,
                entry.get("node"),
            )

    def result(self) -> InvariantResult:
        if self.witness is not None:
            op, tick, detail, node = self.witness
            return InvariantResult(
                self.name,
                "falsified",
                self.instances,
                op,
                tick,
                detail,
                witness_node=node,
            )
        if self.instances == 0:
            return InvariantResult(self.name, "vacuous", 0)
        return InvariantResult(self.name, "confirmed", self.instances)


def mine_journal(entries: List[Dict[str, Any]]) -> List[InvariantResult]:
    """Mine every candidate invariant from one parsed journal."""
    templates = {name: _Template(name) for name in ALL_TEMPLATES}

    # chain-intact: one instance per record, witnessed at the first break.
    chain_problems = verify_chain(entries)
    templates["chain-intact"].instances = len(entries)
    if chain_problems:
        # verify_chain reports "record N: ..." strings; recover the index.
        first = chain_problems[0]
        idx = None
        if first.startswith("record "):
            try:
                idx = int(first.split()[1].rstrip(":"))
            except ValueError:
                idx = None
        witness = entries[idx] if idx is not None and idx < len(entries) else {}
        templates["chain-intact"].witness = (
            witness.get("op"),
            witness.get("tick"),
            first,
            witness.get("node"),
        )

    last_op = 0
    last_tick: Optional[int] = None
    # Strict per-key state: digest -> value digest or _ABSENT or None
    # (None = unknown / reset at an uncertainty boundary).
    state: Dict[str, Optional[str]] = {}
    # key -> ("put", value) / ("delete", None): last *certain* write whose
    # effect the next same-key observation must reflect.
    pending: Dict[str, Tuple[str, Optional[str]]] = {}
    # key -> pre-shed state: the next observation must match it.
    shed_expect: Dict[str, Optional[str]] = {}
    breaker_last: Dict[Any, str] = {}
    counts: Dict[str, int] = {}
    # Armed by a router `settle` record; discharged by the next
    # `merkle_roots` record (roots-converge-after-settle).
    settled = False

    def forget(kd: Optional[str]) -> None:
        """An uncertainty boundary for one key (or all, with None)."""
        if kd is None:
            state.clear()
            pending.clear()
            shed_expect.clear()
        else:
            state.pop(kd, None)
            pending.pop(kd, None)
            shed_expect.pop(kd, None)

    def observe(entry: Dict[str, Any], kd: str, value: Optional[str]) -> None:
        """A successful read of key ``kd`` seeing ``value`` (_ABSENT ok)."""
        if kd in pending:
            verb, expected = pending.pop(kd)
            if verb == "put":
                templates["get-after-put"].check(
                    value == expected,
                    entry,
                    f"after put of {expected!r} the key read back {value!r}",
                )
            else:
                templates["delete-implies-absent"].check(
                    value == _ABSENT,
                    entry,
                    f"after a successful delete the key read back {value!r}",
                )
        if kd in shed_expect:
            expected_state = shed_expect.pop(kd)
            if expected_state is not None:
                templates["shed-no-state-change"].check(
                    value == expected_state,
                    entry,
                    f"state was {expected_state!r} before the shed but "
                    f"{value!r} after",
                )
        state[kd] = value

    for entry in entries:
        kind = entry.get("kind")
        if kind == "genesis":
            continue
        op_id = entry.get("op")
        if isinstance(op_id, int):
            templates["op-monotone"].check(
                op_id > last_op,
                entry,
                f"op id {op_id} does not exceed predecessor {last_op}",
            )
            last_op = max(last_op, op_id)
        tick = entry.get("tick")
        if isinstance(tick, int):
            if last_tick is not None:
                templates["tick-monotone"].check(
                    tick >= last_tick,
                    entry,
                    f"tick {tick} went backwards from {last_tick}",
                )
            last_tick = tick if last_tick is None else max(last_tick, tick)

        if kind == "seal":
            recorded = entry.get("counts")
            if isinstance(recorded, dict):
                held = all(
                    recorded.get(k, 0) == counts.get(k, 0)
                    for k in set(recorded) | set(counts)
                )
                templates["seal-counts"].check(
                    held, entry, "seal counters disagree with the replayed ops"
                )
            continue

        out = entry.get("out", "ok")
        counts[f"{kind}:{out}"] = counts.get(f"{kind}:{out}", 0) + 1

        if kind == "breaker":
            disk = entry.get("disk")
            frm, to = entry.get("from"), entry.get("to")
            if not entry.get("reset"):
                prev = breaker_last.get(disk)
                held = (prev is None or frm == prev) and (frm, to) in _BREAKER_EDGES
                templates["breaker-legality"].check(
                    held,
                    entry,
                    f"disk {disk}: transition {frm}->{to} (previous state "
                    f"{prev})",
                )
            breaker_last[disk] = to
            continue

        if kind == "settle":
            settled = True
            continue
        if kind == "merkle_roots":
            if settled:
                templates["roots-converge-after-settle"].check(
                    bool(entry.get("converged")),
                    entry,
                    f"roots still divergent after settle "
                    f"({entry.get('divergent')} of {entry.get('groups')} "
                    f"placement groups)",
                )
                settled = False
            continue

        kd = entry.get("key")

        if out in _SHEDS:
            # A shed must not have mutated state; arm the comparison if we
            # know the pre-shed state of this key.
            if kd is not None and kd in state and kd not in pending:
                shed_expect[kd] = state[kd]
            continue

        if kind == "put":
            if out == "ok" and kd is not None:
                vd = entry.get("value")
                state[kd] = vd
                pending[kd] = ("put", vd)
                shed_expect.pop(kd, None)
            elif kd is not None:
                forget(kd)
        elif kind == "delete":
            if out == "ok" and kd is not None:
                state[kd] = _ABSENT
                pending[kd] = ("delete", None)
                shed_expect.pop(kd, None)
            elif out == "not_found" and kd is not None:
                observe(entry, kd, _ABSENT)
            elif kd is not None:
                forget(kd)
        elif kind == "get":
            if out == "ok" and kd is not None:
                observe(entry, kd, entry.get("value"))
            elif out == "not_found" and kd is not None:
                observe(entry, kd, _ABSENT)
        elif kind == "contains":
            if out == "ok" and kd is not None:
                present = bool(entry.get("result"))
                known = state.get(kd)
                if present and known not in (None, _ABSENT):
                    observe(entry, kd, known)
                elif not present:
                    observe(entry, kd, _ABSENT)
                else:
                    # Present but exact value unknown: can still discharge
                    # a pending delete (it should have been absent).
                    if kd in pending and pending[kd][0] == "delete":
                        pending.pop(kd)
                        templates["delete-implies-absent"].check(
                            False, entry, "key present after a successful delete"
                        )
        elif kind == "reboot":
            if entry.get("mode") != "clean" or out != "ok":
                forget(None)
        elif kind == "scrub_repair":
            for qd in entry.get("quarantined") or []:
                forget(qd)
        elif kind == "bulk_create":
            items = entry.get("items") or []
            if out == "ok":
                for ikd, ivd in items:
                    state[ikd] = ivd
                    pending[ikd] = ("put", ivd)
                    shed_expect.pop(ikd, None)
            else:
                for ikd, _ in items:
                    forget(ikd)
        elif kind == "bulk_delete":
            items = entry.get("items") or []
            if out == "ok":
                for ikd in items:
                    state[ikd] = _ABSENT
                    pending.pop(ikd, None)
                    shed_expect.pop(ikd, None)
            else:
                for ikd in items:
                    forget(ikd)
        elif out.startswith("error:") and kd is not None:
            forget(kd)

    return [templates[name].result() for name in ALL_TEMPLATES]


def mine_journals(
    journal_list: Iterable[List[Dict[str, Any]]],
) -> List[InvariantResult]:
    """Mine several journals and merge per-template verdicts.

    Falsified anywhere wins (first witness kept); instances are summed; a
    template confirmed in at least one journal and falsified in none is
    confirmed; otherwise vacuous.
    """
    merged: Dict[str, InvariantResult] = {}
    for entries in journal_list:
        for res in mine_journal(entries):
            prior = merged.get(res.name)
            if prior is None:
                merged[res.name] = res
                continue
            prior.instances += res.instances
            if prior.status != "falsified" and res.status == "falsified":
                prior.status = "falsified"
                prior.witness_op = res.witness_op
                prior.witness_tick = res.witness_tick
                prior.witness_node = res.witness_node
                prior.detail = res.detail
            elif prior.status == "vacuous" and res.status == "confirmed":
                prior.status = "confirmed"
    return [merged[name] for name in ALL_TEMPLATES if name in merged]


def mine_file(path: str) -> List[InvariantResult]:
    """Mine one journal file."""
    return mine_journal(read_journal(path))
