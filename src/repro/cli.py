"""Command-line interface: run the validation suites from a shell.

The paper's checks are "pay-as-you-go": run them longer to find more, both
on a laptop during development and at scale before deployments.  This CLI
is that knob — each subcommand is one checker with its budget exposed:

    python -m repro conformance --alphabet crash --sequences 500
    python -m repro conformance --fault CACHE_WRITE_MISSING_SOFT_PTR_DEP --minimize
    python -m repro mc --harness compaction-reclaim --strategy pct --iterations 300
    python -m repro fuzz --iterations 20000
    python -m repro verify-models --depth 4
    python -m repro fig5
    python -m repro loc
    python -m repro campaign --smoke --trace --output out.json
    python -m repro stats --from-artifact out.json
    python -m repro trace --from-artifact out.json
    python -m repro bench --workload mixed --ops 2000 --seed 7 --output bench.json
    python -m repro bench --workload mixed --check-baseline benchmarks/baselines.json
    python -m repro bench --workload mixed --journal ops.jsonl
    python -m repro check-trace ops.jsonl --require-seal
    python -m repro invariants ops.jsonl other.jsonl
    python -m repro metrics-serve --port 9464

Exit status is 0 when every check passed and 1 when any found an issue,
so the commands drop straight into CI gates.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

_ALPHABETS = ("store", "crash", "failure", "node")
_HARNESSES = (
    "locator-race",
    "buffer-pool",
    "list-remove",
    "compaction-reclaim",
    "bulk-race",
    "linearizability",
    "quorum",
)


def _parse_fault(name: Optional[str]):
    from repro.shardstore import Fault, FaultSet

    if name is None:
        return FaultSet.none()
    try:
        return FaultSet.only(Fault[name])
    except KeyError:
        valid = ", ".join(f.name for f in Fault)
        raise SystemExit(f"unknown fault {name!r}; one of: {valid}")


def _cmd_conformance(args: argparse.Namespace) -> int:
    from repro.core import (
        BiasConfig,
        NodeHarness,
        StoreHarness,
        crash_alphabet,
        failure_alphabet,
        minimize,
        node_alphabet,
        replay_fails,
        run_conformance,
        store_alphabet,
    )

    faults = _parse_fault(args.fault)
    bias = BiasConfig.unbiased() if args.unbiased else BiasConfig()
    alphabet = {
        "store": store_alphabet,
        "crash": crash_alphabet,
        "failure": failure_alphabet,
        "node": node_alphabet,
    }[args.alphabet]()
    if args.alphabet == "node":
        factory = lambda seed: NodeHarness(faults, seed)  # noqa: E731
        ctx = {"num_disks": 3}
    else:
        factory = lambda seed: StoreHarness(  # noqa: E731
            faults, seed, uuid_magic_bias=args.uuid_bias
        )
        ctx = None
    report = run_conformance(
        factory,
        alphabet,
        sequences=args.sequences,
        ops_per_sequence=args.ops,
        bias=bias,
        base_seed=args.seed,
        ctx_kwargs=ctx,
    )
    print(
        f"{report.sequences_run} sequences x {args.ops} ops "
        f"({report.ops_run} operations total)"
    )
    if report.passed:
        print("PASS: no conformance violation found")
        return 0
    print(f"FAIL: {report.failure}")
    print(f"  failing seed: {report.failing_seed}")
    if args.minimize:
        fails = replay_fails(factory, report.failing_seed)
        reduced, stats = minimize(report.failing_sequence, fails)
        print(
            f"  minimized {stats.initial_ops} -> {stats.final_ops} ops "
            f"({stats.candidates_tried} candidates):"
        )
        for op in reduced:
            print(f"    {op}")
    return 1


def _cmd_mc(args: argparse.Namespace) -> int:
    from repro.concurrency import model
    from repro.core import concurrent_harnesses as harnesses

    factory_fn = {
        "locator-race": harnesses.locator_race_harness,
        "buffer-pool": harnesses.buffer_pool_harness,
        "list-remove": harnesses.list_remove_harness,
        "compaction-reclaim": harnesses.compaction_reclaim_harness,
        "bulk-race": harnesses.bulk_race_harness,
        "linearizability": harnesses.linearizability_harness,
        "quorum": harnesses.quorum_harness,
    }[args.harness]
    faults = _parse_fault(args.fault)
    result = model(
        factory_fn(faults, args.harness_seed),
        strategy=args.strategy,
        iterations=args.iterations,
        seed=args.seed,
        pct_steps_hint=args.pct_steps_hint,
        max_executions=args.iterations if args.strategy == "dfs" else 20_000,
    )
    print(
        f"{result.executions} executions, {result.total_steps} scheduling "
        f"decisions, exhausted={result.exhausted}"
    )
    if result.passed:
        print("PASS: no failing interleaving found")
        return 0
    print(f"FAIL: {result.failure}")
    print(f"  failing schedule: {len(result.failing_schedule)} decisions")
    return 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.serialization.fuzz import (
        check_exhaustive,
        check_fuzz,
        standard_corpus,
        standard_decoders,
    )

    status = 0
    for name, decoder in standard_decoders():
        exhaustive = check_exhaustive(decoder, max_len=args.exhaustive_len, name=name)
        fuzz = check_fuzz(
            decoder,
            iterations=args.iterations,
            seed=args.seed,
            corpus=standard_corpus(),
            name=name,
        )
        verdict = "PASS" if exhaustive.passed and fuzz.passed else "FAIL"
        print(
            f"{verdict} {name}: exhaustive<= {args.exhaustive_len}B "
            f"({exhaustive.inputs_tried} inputs), fuzz {fuzz.inputs_tried} "
            f"inputs ({fuzz.decoded_ok} ok / {fuzz.rejected} rejected)"
        )
        for report in (exhaustive, fuzz):
            if not report.passed:
                print(f"  panic on {report.panic_input!r}: {report.panic!r}")
                status = 1
    return status


def _cmd_verify_models(args: argparse.Namespace) -> int:
    from repro.core.model_verify import verify_chunkstore_model, verify_kv_model

    status = 0
    for name, result in [
        ("kv-model", verify_kv_model(depth=args.depth)),
        ("chunkstore-model", verify_chunkstore_model(depth=args.depth + 1)),
    ]:
        if result.verified:
            print(
                f"PASS {name}: {result.sequences_checked} sequences to depth "
                f"{result.max_depth}"
            )
        else:
            print(f"FAIL {name}: {result.message}")
            print(f"  counterexample: {[str(op) for op in result.counterexample]}")
            status = 1
    return status


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.core import detection_matrix

    if args.from_artifact:
        import json

        from repro.core import outcomes_from_campaign

        try:
            with open(args.from_artifact, "r", encoding="utf-8") as handle:
                artifact = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"cannot load artifact {args.from_artifact}: {exc}")
            return 2
        outcomes = outcomes_from_campaign(artifact)
        if not outcomes:
            print(f"no fault_matrix section in {args.from_artifact}")
            return 2
    else:
        from repro.campaign import fault_matrix_shards, smoke_spec
        from repro.campaign.fault_matrix import run_shard
        from repro.core import DetectionOutcome
        from repro.shardstore import Fault

        outcomes = []
        for shard in fault_matrix_shards(smoke_spec(), 0):
            result = run_shard(shard)
            outcomes.append(
                DetectionOutcome(
                    fault=Fault[result.fault],
                    detected=result.detected,
                    detector=result.detector,
                    evidence=(
                        result.failures[0].detail if result.failures else ""
                    ),
                    sequences_or_executions=result.cases,
                )
            )
    print(detection_matrix(outcomes))
    return 0 if all(outcome.detected for outcome in outcomes) else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    import json

    from repro.campaign import CampaignSpec, run_campaign, smoke_spec
    from repro.core import campaign_summary

    if args.smoke:
        spec = smoke_spec(
            workers=args.workers,
            base_seed=args.seed,
            budget_seconds=args.budget_seconds,
            trace=args.trace,
            suite=args.suite,
            breaker_enabled=not args.no_breaker,
            shedding_enabled=not args.no_shedding,
            journal=args.journal,
            read_repair_enabled=not args.no_read_repair,
            anti_entropy_enabled=not args.no_anti_entropy,
        )
    else:
        spec = CampaignSpec(
            workers=args.workers,
            base_seed=args.seed,
            budget_seconds=args.budget_seconds,
            trace=args.trace,
            suite=args.suite,
            breaker_enabled=not args.no_breaker,
            shedding_enabled=not args.no_shedding,
            journal=args.journal,
            read_repair_enabled=not args.no_read_repair,
            anti_entropy_enabled=not args.no_anti_entropy,
        )
    result = run_campaign(spec, log=print)
    artifact = result.to_json()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
            handle.write("\n")
        print(f"artifact written to {args.output}")
    print(campaign_summary(artifact))
    return 0 if artifact["passed"] else 1


def _cmd_merkle_scrub(args: argparse.Namespace) -> int:
    """Seed a deterministic store, optionally corrupt it, and prove (or
    repair) its integrity by Merkle root comparison.

    Exit status is the proof: 0 when the store proves intact (after
    repair, if ``--repair``), 1 when divergence remains -- which is how
    the CI job turns the proof into a gate.
    """
    import random

    from repro.shardstore import (
        DiskGeometry,
        FaultSet,
        StoreConfig,
        StoreSystem,
    )

    system = StoreSystem(
        StoreConfig(
            geometry=DiskGeometry(
                num_extents=10, extent_size=2048, page_size=128
            ),
            faults=FaultSet.none(),
        )
    )
    store = system.store
    rng = random.Random(args.seed)
    keys = [b"mk-%02d" % i for i in range(args.keys)]
    for key in keys:
        store.put(key, bytes([rng.randrange(256)]) * (96 + rng.randrange(160)))
    store.flush_index()
    store.drain()
    store.cache.invalidate_all()
    if args.corrupt:
        for key in sorted(rng.sample(keys, k=min(args.corrupt, len(keys)))):
            locators = store.index.get(key)
            assert locators is not None
            system.disk.corrupt(locators[0].extent, locators[0].offset + 8)
            print(f"corrupted one on-disk byte under {key.decode()}")
    report = store.merkle_scrub()
    print(
        f"merkle scrub: {report.keys_checked} keys, "
        f"{report.compared} tree nodes compared, "
        f"expected root {report.expected_root}, "
        f"actual root {report.actual_root}"
    )
    if report.proven:
        print("PROVEN: every live value matches the write-time commitment")
        return 0
    print(
        "DIVERGENT: "
        + ", ".join(key.decode() for key in report.diverging)
    )
    if args.repair:
        repair = store.scrub_repair(merkle=True)
        after = repair.merkle_after
        print(
            f"repair: {len(repair.repaired)} repaired, "
            f"{len(repair.quarantined)} quarantined, "
            f"root now {after.actual_root if after else '?'}"
        )
        if repair.proven:
            print("PROVEN after repair")
            return 0
    return 1


def _load_artifact(path: str):
    import json

    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"cannot load artifact {path}: {exc}")
        return None


def _demo_snapshot(seed: int):
    """Run a small traced workload and return the recorder snapshot.

    Backs ``repro stats`` / ``repro trace`` when no artifact is given: a
    deterministic put/get/delete/flush/reboot exercise over a fresh store
    with tracing on, so the commands are usable without a campaign run.
    """
    import random

    from repro.core.alphabet import BiasConfig, store_alphabet
    from repro.core.conformance import StoreHarness
    from repro.shardstore import FaultSet, RingRecorder

    recorder = RingRecorder()
    harness = StoreHarness(FaultSet.none(), seed, recorder=recorder)
    ops = store_alphabet().generate_sequence(
        random.Random(seed), 40, BiasConfig()
    )
    failure = harness.run(ops)
    if failure is not None:  # pragma: no cover - fault-free demo run
        print(f"demo workload diverged: {failure}")
    return recorder.snapshot()


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.shardstore.observability import (
        render_fault_events,
        render_metrics,
    )

    if args.from_artifact:
        artifact = _load_artifact(args.from_artifact)
        if artifact is None:
            return 2
        metrics = artifact.get("metrics")
        if not metrics:
            print(
                f"no metrics section in {args.from_artifact} "
                "(rerun the campaign with --trace)"
            )
            return 2
        events = []
        for row in artifact.get("fault_matrix", []):
            events.extend(row.get("fault_events") or [])
        if args.json:
            json.dump(
                {"metrics": metrics, "fault_events": events},
                sys.stdout,
                indent=2,
            )
            print()
            return 0
        print(render_metrics(metrics))
        if events:
            print()
            print("fault events (fault matrix):")
            print(render_fault_events(events))
        return 0
    snapshot = _demo_snapshot(args.seed)
    if args.json:
        json.dump(
            {
                "metrics": snapshot["metrics"],
                "fault_events": snapshot["fault_events"],
            },
            sys.stdout,
            indent=2,
        )
        print()
        return 0
    print(render_metrics(snapshot["metrics"]))
    print()
    print("fault events:")
    print(render_fault_events(snapshot["fault_events"]))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.shardstore.observability import (
        filter_trace,
        render_fault_events,
        render_trace,
    )

    def narrowed(events):
        if args.component is None and args.op is None:
            return list(events)
        return filter_trace(events, component=args.component, op=args.op)

    if args.from_artifact:
        artifact = _load_artifact(args.from_artifact)
        if artifact is None:
            return 2
        if not artifact.get("traced"):
            print(
                f"{args.from_artifact} was not traced "
                "(rerun the campaign with --trace)"
            )
            return 2
        sections = 0
        json_out = {"failures": [], "fault_matrix": []}
        for failure in artifact.get("failures", []):
            if failure.get("trace") is None:
                continue
            sections += 1
            if args.json:
                json_out["failures"].append(
                    {**failure, "trace": narrowed(failure["trace"])}
                )
                continue
            print(
                f"== failure shard={failure.get('shard_id')} "
                f"seed={failure.get('seed')}: {failure.get('detail')}"
            )
            print(render_trace(narrowed(failure["trace"])))
            if failure.get("fault_events"):
                print("fault events:")
                print(render_fault_events(failure["fault_events"]))
            print()
        for row in artifact.get("fault_matrix", []):
            if args.fault and row.get("fault") != args.fault:
                continue
            if row.get("trace") is None:
                continue
            sections += 1
            if args.json:
                json_out["fault_matrix"].append(
                    {**row, "trace": narrowed(row["trace"])}
                )
                continue
            detected = "detected" if row.get("detected") else "MISSED"
            print(f"== fault #{row['id']} {row['fault']} ({detected})")
            print(render_trace(narrowed(row["trace"])))
            if row.get("fault_events"):
                print("fault events:")
                print(render_fault_events(row["fault_events"]))
            print()
        if not sections:
            print("no trace sections matched")
            return 2
        if args.json:
            json.dump(json_out, sys.stdout, indent=2)
            print()
        return 0
    snapshot = _demo_snapshot(args.seed)
    if args.json:
        json.dump({"trace": narrowed(snapshot["trace"])}, sys.stdout, indent=2)
        print()
        return 0
    print(
        render_trace(
            narrowed(snapshot["trace"]),
            dropped=snapshot.get("trace_dropped", 0),
        )
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench import (
        BaselineRaiseError,
        compare_to_baseline,
        empty_baselines,
        load_baselines,
        render_report,
        run_bench,
        save_baselines,
        update_baselines,
    )

    try:
        artifact = run_bench(
            args.workload,
            ops=args.ops,
            value_size=args.value_size,
            seed=args.seed,
            target=args.target,
            num_disks=args.num_disks,
            slowdown_ns=int(args.slowdown_us * 1000),
            journal_path=args.journal,
            mutant=args.mutant,
        )
    except ValueError as exc:
        print(f"bench setup error: {exc}")
        return 2
    overall = artifact["latency_ns"]["all"]
    print(
        f"{args.workload}: {artifact['ops']} ops on {artifact['target']} "
        f"target in {artifact['wall_seconds']:.3f}s "
        f"({artifact['throughput_ops_per_sec']:,.0f} ops/s)"
    )
    print(
        f"  latency p50={overall['p50']:,}ns p90={overall['p90']:,}ns "
        f"p99={overall['p99']:,}ns p999={overall['p999']:,}ns"
    )
    for component, digest in artifact["components_ns"].items():
        print(
            f"  {component:<10} busy {digest['share_of_wall']:>6.1%} "
            f"p50={digest['p50']:,}ns ({digest['count']:,} sections)"
        )
    if "journal" in artifact:
        journal = artifact["journal"]
        print(
            f"  journal {journal['path']}: {journal['records']:,} records, "
            f"{journal['bytes']:,} bytes, head {journal['head']}"
        )
    if "mutant" in artifact:
        mutant = artifact["mutant"]
        print(
            f"  MUTANT {mutant['name']} active (victim op index "
            f"{mutant['victim_op_index']}); repro check-trace must flag "
            "this journal"
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
            handle.write("\n")
        print(f"artifact written to {args.output}")
    if args.update_baseline:
        try:
            baselines = load_baselines(args.update_baseline)
        except (OSError, ValueError):
            baselines = empty_baselines()
        try:
            update_baselines(
                artifact, baselines, allow_raise=args.allow_baseline_raise
            )
        except BaselineRaiseError as exc:
            print(f"BASELINE RAISE REFUSED: {exc}")
            return 1
        save_baselines(baselines, args.update_baseline)
        print(f"baseline updated in {args.update_baseline}")
        return 0
    if args.check_baseline:
        try:
            baselines = load_baselines(args.check_baseline)
        except (OSError, ValueError) as exc:
            print(f"cannot load baselines {args.check_baseline}: {exc}")
            return 2
        report = compare_to_baseline(
            artifact, baselines, tolerance=args.tolerance
        )
        band = args.tolerance
        if band is None:
            band = baselines.get("default_tolerance")
        print(render_report(report, tolerance_note=f"band +{band:.0%}"))
        return 0 if report.passed else 1
    return 0


def _cmd_metrics_serve(args: argparse.Namespace) -> int:
    from repro.bench import serve

    return serve(
        host=args.host,
        port=args.port,
        seed=args.seed,
        num_disks=args.num_disks,
        cluster_nodes=args.cluster,
        warmup_ops=args.warmup_ops,
        ops_per_scrape=args.ops_per_scrape,
        journal_path=args.journal,
    )


def _cmd_check_trace_cluster(args: argparse.Namespace) -> int:
    import json

    from repro.evidence import check_cluster_files
    from repro.shardstore.observability import JournalError

    try:
        report = check_cluster_files(
            list(args.journal), require_seal=args.require_seal
        )
    except JournalError as exc:
        print(f"cannot read cluster journals: {exc}")
        return 2
    verdict = report.to_json()
    if args.json:
        json.dump(verdict, sys.stdout, indent=2)
        print()
        return 0 if verdict["passed"] else 1
    status = "PASS" if verdict["passed"] else "FAIL"
    names = ", ".join(sorted(report.journals))
    print(
        f"{status} cluster replay over {len(report.journals)} journals "
        f"({names}): {report.records} records / {report.ops} router ops"
    )
    print(
        f"  {report.checked} state assertions checked, "
        f"{report.corroborated} replica acks corroborated across node "
        f"journals, {report.crashes} node crashes replayed"
    )
    for violation in verdict["violations"]:
        where = (
            f"op {violation['op']} tick {violation['tick']}"
            if violation.get("op") is not None
            else f"journal {violation.get('node')}"
        )
        print(f"  VIOLATION at {where}: {violation['problem']}")
    if report.violation_count > len(report.violations):
        print(
            f"  ... and {report.violation_count - len(report.violations)} "
            "more violations"
        )
    return 0 if verdict["passed"] else 1


def _cmd_check_trace(args: argparse.Namespace) -> int:
    import json

    from repro.evidence import check_file
    from repro.shardstore.observability import JournalError

    if len(args.journal) > 1:
        # Several journals = one cluster run (router + per-node journals):
        # merged replay under cross-node candidate-set semantics.
        return _cmd_check_trace_cluster(args)
    journal_path = args.journal[0]
    try:
        report = check_file(journal_path, require_seal=args.require_seal)
    except JournalError as exc:
        print(f"cannot read journal {journal_path}: {exc}")
        return 2
    verdict = report.to_json()
    if args.expect_head and report.head != args.expect_head:
        verdict["passed"] = False
        verdict["violations"].append(
            {
                "record": None,
                "problem": (
                    f"chain head {report.head} != expected {args.expect_head}"
                ),
            }
        )
    if args.json:
        json.dump(verdict, sys.stdout, indent=2)
        print()
        return 0 if verdict["passed"] else 1
    status = "PASS" if verdict["passed"] else "FAIL"
    sealed = "sealed" if report.sealed else "UNSEALED"
    print(
        f"{status} {journal_path}: {report.records} records / {report.ops} "
        f"ops replayed against the reference model ({sealed}, head "
        f"{report.head})"
    )
    print(
        f"  {report.checked} state assertions checked, {report.skipped} "
        f"skipped for crash uncertainty, {report.sheds} sheds proven "
        "state-preserving"
    )
    for violation in verdict["violations"]:
        where = (
            f"op {violation['op']} tick {violation['tick']}"
            if violation.get("op") is not None
            else f"record {violation.get('record')}"
        )
        print(f"  VIOLATION at {where}: {violation['problem']}")
    if report.violation_count > len(report.violations):
        print(
            f"  ... and {report.violation_count - len(report.violations)} "
            "more violations"
        )
    return 0 if verdict["passed"] else 1


def _cmd_invariants(args: argparse.Namespace) -> int:
    import json

    from repro.evidence import mine_journals
    from repro.shardstore.observability import JournalError, read_journal

    journals = []
    for path in args.journals:
        try:
            journals.append(read_journal(path))
        except JournalError as exc:
            print(f"cannot read journal {path}: {exc}")
            return 2
    results = mine_journals(journals)
    failed = [
        res for res in results if res.promoted and res.status == "falsified"
    ]
    if args.json:
        json.dump(
            {
                "journals": list(args.journals),
                "passed": not failed,
                "invariants": [res.to_json() for res in results],
            },
            sys.stdout,
            indent=2,
        )
        print()
        return 1 if failed else 0
    print(
        f"mined {len(results)} candidate invariants from "
        f"{len(journals)} journal(s):"
    )
    for res in results:
        tier = "promoted" if res.promoted else "exploratory"
        line = (
            f"  {res.status.upper():<9} {res.name:<22} [{tier}] "
            f"{res.instances:,} instances"
        )
        if res.status == "falsified":
            where = f"op {res.witness_op} tick {res.witness_tick}"
            if res.witness_node:
                where += f" node {res.witness_node}"
            line += f" -- witness {where}: {res.detail}"
        print(line)
    if failed:
        print(f"FAIL: {len(failed)} promoted invariant(s) falsified")
        return 1
    print("PASS: no promoted invariant falsified")
    return 0


def _cmd_loc(args: argparse.Namespace) -> int:
    from repro.core import loc_table

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    print(loc_table(root))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lightweight-formal-methods validation suites "
        "(SOSP 2021 ShardStore reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    conf = sub.add_parser("conformance", help="property-based conformance checking")
    conf.add_argument("--alphabet", choices=_ALPHABETS, default="store")
    conf.add_argument("--sequences", type=int, default=100)
    conf.add_argument("--ops", type=int, default=80)
    conf.add_argument("--seed", type=int, default=0)
    conf.add_argument("--fault", help="inject one Fault by name")
    conf.add_argument("--uuid-bias", type=float, default=0.0)
    conf.add_argument("--unbiased", action="store_true")
    conf.add_argument("--minimize", action="store_true")
    conf.set_defaults(fn=_cmd_conformance)

    mc = sub.add_parser("mc", help="stateless model checking")
    mc.add_argument("--harness", choices=_HARNESSES, required=True)
    mc.add_argument("--strategy", choices=("dfs", "random", "pct"), default="pct")
    mc.add_argument("--iterations", type=int, default=200)
    mc.add_argument("--seed", type=int, default=0)
    mc.add_argument(
        "--harness-seed",
        type=int,
        default=0,
        help="seed for the harness's own state (explorer seed is --seed)",
    )
    mc.add_argument("--pct-steps-hint", type=int, default=128)
    mc.add_argument("--fault", help="inject one Fault by name")
    mc.set_defaults(fn=_cmd_mc)

    campaign = sub.add_parser(
        "campaign",
        help="parallel validation campaign (all checkers, JSON artifact)",
    )
    campaign.add_argument(
        "--workers", type=int, default=2, help="process-pool size"
    )
    campaign.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        help="stop dispatching new shards after this many seconds",
    )
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--output", help="write the JSON artifact here")
    campaign.add_argument(
        "--smoke",
        action="store_true",
        help="per-commit CI profile: small budgets, every phase",
    )
    campaign.add_argument(
        "--trace",
        action="store_true",
        help="record per-shard metrics, fault events, and op traces in "
        "the artifact (schema v2 observability sections)",
    )
    from repro.campaign.spec import SUITE_REGISTRY

    campaign.add_argument(
        "--suite",
        choices=tuple(SUITE_REGISTRY),
        default="full",
        help="; ".join(
            f"'{name}': {blurb}" for name, blurb in SUITE_REGISTRY.items()
        ),
    )
    campaign.add_argument(
        "--no-breaker",
        action="store_true",
        help="run injection shards with the disk-health circuit breaker "
        "disabled (the permanent-fault shard is expected to FAIL)",
    )
    campaign.add_argument(
        "--no-shedding",
        action="store_true",
        help="run admission-enabled (brownout/overload) shards with load "
        "shedding disabled (storm shards are expected to FAIL their "
        "deadline_violations == 0 gate)",
    )
    campaign.add_argument(
        "--journal",
        action="store_true",
        help="journal every injection-shard op and replay each sequence "
        "journal through the trace checker; verdicts and chained digests "
        "land in the artifact's evidence section (schema v5)",
    )
    campaign.add_argument(
        "--no-read-repair",
        action="store_true",
        help="run cluster shards with read-repair disabled (storm shards "
        "are expected to FAIL their replica-convergence settlement gate)",
    )
    campaign.add_argument(
        "--no-anti-entropy",
        action="store_true",
        help="run anti-entropy shards with Merkle sync disabled "
        "(divergence-storm shards are expected to FAIL their "
        "roots_converged settlement gate)",
    )
    campaign.set_defaults(fn=_cmd_campaign)

    merkle = sub.add_parser(
        "merkle-scrub",
        help="prove store integrity by Merkle root comparison "
        "(exit 0 = proven)",
    )
    merkle.add_argument("--seed", type=int, default=0)
    merkle.add_argument(
        "--keys", type=int, default=12, help="keys to seed the store with"
    )
    merkle.add_argument(
        "--corrupt",
        type=int,
        default=0,
        metavar="N",
        help="flip one on-disk byte under N keys before scrubbing",
    )
    merkle.add_argument(
        "--repair",
        action="store_true",
        help="run the Merkle-mode scrub-repair and re-prove afterwards",
    )
    merkle.set_defaults(fn=_cmd_merkle_scrub)

    stats = sub.add_parser(
        "stats", help="render observability metrics and fault events"
    )
    stats.add_argument(
        "--from-artifact",
        help="read the merged metrics block from a traced campaign artifact",
    )
    stats.add_argument(
        "--seed", type=int, default=0, help="seed for the live demo workload"
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the human tables",
    )
    stats.set_defaults(fn=_cmd_stats)

    trace = sub.add_parser(
        "trace", help="render recorded op traces (spans, events, faults)"
    )
    trace.add_argument(
        "--from-artifact",
        help="render failure and fault-matrix traces from a traced "
        "campaign artifact",
    )
    trace.add_argument(
        "--fault", help="only render the matrix row for this Fault name"
    )
    trace.add_argument(
        "--component",
        help="only show entries for one component (e.g. disk, lsm, cache, "
        "sched, node, op)",
    )
    trace.add_argument(
        "--op",
        metavar="NAME",
        help="only show top-level spans with this name (e.g. put, get) "
        "and everything nested inside them",
    )
    trace.add_argument(
        "--seed", type=int, default=0, help="seed for the live demo workload"
    )
    trace.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the rendered trace",
    )
    trace.set_defaults(fn=_cmd_trace)

    bench = sub.add_parser(
        "bench",
        help="workload-driven performance benchmark (BENCH_*.json artifact)",
    )
    from repro.bench.workloads import WORKLOADS as _WORKLOADS

    bench.add_argument("--workload", choices=_WORKLOADS, required=True)
    bench.add_argument("--ops", type=int, default=2000)
    bench.add_argument("--value-size", type=int, default=64)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--target",
        choices=("store", "node"),
        default=None,
        help="system under test (default: per-workload; reclaim-churn and "
        "crash-recover use the single-disk store)",
    )
    bench.add_argument("--num-disks", type=int, default=3)
    bench.add_argument("--output", help="write the JSON artifact here")
    bench.add_argument(
        "--check-baseline",
        metavar="PATH",
        help="gate against committed baselines (exit 1 on regression)",
    )
    bench.add_argument(
        "--update-baseline",
        metavar="PATH",
        help="write this run's numbers into the baselines file",
    )
    bench.add_argument(
        "--allow-baseline-raise",
        action="store_true",
        help="let --update-baseline loosen an existing entry (higher p50 / "
        "lower throughput); refused by default so regressions are adopted "
        "deliberately",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="override the regression band (fraction, e.g. 0.35)",
    )
    bench.add_argument(
        "--slowdown-us",
        type=float,
        default=0.0,
        help="inject a synthetic per-op busy-wait (microseconds) to "
        "demonstrate the regression gate failing",
    )
    from repro.bench.harness import MUTANTS as _MUTANTS

    bench.add_argument(
        "--journal",
        metavar="PATH",
        help="stream every op into a chained JSONL evidence journal "
        "(deterministic bytes; feed it to repro check-trace / invariants)",
    )
    bench.add_argument(
        "--mutant",
        choices=_MUTANTS,
        default=None,
        help="seed an implementation bug whose journal still looks honest; "
        "the negative control for repro check-trace (requires --journal)",
    )
    bench.set_defaults(fn=_cmd_bench)

    metrics_serve = sub.add_parser(
        "metrics-serve",
        help="serve live Prometheus metrics from a demo storage node",
    )
    metrics_serve.add_argument("--host", default="127.0.0.1")
    metrics_serve.add_argument("--port", type=int, default=9464)
    metrics_serve.add_argument("--seed", type=int, default=0)
    metrics_serve.add_argument("--num-disks", type=int, default=3)
    metrics_serve.add_argument(
        "--cluster",
        type=int,
        default=0,
        metavar="N",
        help="serve a quorum cluster of N storage nodes instead of a "
        "single node: per-node {node=...} labeled series on /metrics, "
        "cluster quorum roll-up on /healthz, deterministic partition "
        "storms every few scrapes",
    )
    metrics_serve.add_argument(
        "--warmup-ops",
        type=int,
        default=400,
        help="mixed-workload ops applied before serving",
    )
    metrics_serve.add_argument(
        "--ops-per-scrape",
        type=int,
        default=25,
        help="fresh traffic applied on every /metrics scrape",
    )
    metrics_serve.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="also persist the live op journal here (it is always kept "
        "in memory for the /metrics evidence gauges)",
    )
    metrics_serve.set_defaults(fn=_cmd_metrics_serve)

    check_trace = sub.add_parser(
        "check-trace",
        help="replay an op journal against the reference model "
        "(trace-conformance evidence)",
    )
    check_trace.add_argument(
        "journal",
        nargs="+",
        help="journal JSONL path(s); several paths are replayed together "
        "as one cluster run (router + per-node journals, merged "
        "candidate-set semantics)",
    )
    check_trace.add_argument(
        "--require-seal",
        action="store_true",
        help="treat a missing seal record (truncated tail) as a violation",
    )
    check_trace.add_argument(
        "--expect-head",
        metavar="DIGEST",
        help="also require the chain head to equal this digest (binds the "
        "journal to a bench/campaign artifact)",
    )
    check_trace.add_argument(
        "--json", action="store_true", help="emit the verdict as JSON"
    )
    check_trace.set_defaults(fn=_cmd_check_trace)

    invariants = sub.add_parser(
        "invariants",
        help="mine Daikon-style candidate invariants from op journals",
    )
    invariants.add_argument(
        "journals", nargs="+", help="journal JSONL path(s)"
    )
    invariants.add_argument(
        "--json", action="store_true", help="emit results as JSON"
    )
    invariants.set_defaults(fn=_cmd_invariants)

    fuzz = sub.add_parser("fuzz", help="deserializer panic-freedom checking")
    fuzz.add_argument("--iterations", type=int, default=10_000)
    fuzz.add_argument("--exhaustive-len", type=int, default=2)
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.set_defaults(fn=_cmd_fuzz)

    verify = sub.add_parser(
        "verify-models", help="bounded-exhaustive reference-model verification"
    )
    verify.add_argument("--depth", type=int, default=4)
    verify.set_defaults(fn=_cmd_verify_models)

    fig5 = sub.add_parser("fig5", help="regenerate the Fig. 5 detection matrix")
    fig5.add_argument(
        "--from-artifact",
        help="rebuild the table from a campaign JSON artifact instead of "
        "re-running the hunts",
    )
    fig5.set_defaults(fn=_cmd_fig5)

    loc = sub.add_parser("loc", help="regenerate the Fig. 6 lines-of-code table")
    loc.add_argument("--root")
    loc.set_defaults(fn=_cmd_loc)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
