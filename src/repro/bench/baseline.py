"""Baseline comparison: the CI perf-regression gate.

``benchmarks/baselines.json`` commits a p50 latency (and throughput floor)
per workload; :func:`compare_to_baseline` checks a fresh bench artifact
against it with a multiplicative tolerance band (default +35%, the gate
the CI ``bench`` job fails on).  Baselines are machine-dependent wall-clock
numbers, so the band is generous and the update procedure
(``repro bench --update-baseline``) is documented in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

BASELINE_SCHEMA_VERSION = 1

#: The ISSUE-mandated gate: fail on >35% p50 regressions.
DEFAULT_TOLERANCE = 0.35


@dataclass
class BaselineEntry:
    """One comparison row (a latency series or the throughput check)."""

    metric: str
    baseline: float
    measured: Optional[float]
    limit: float
    passed: bool
    note: str = ""


@dataclass
class BaselineReport:
    workload: str
    entries: List[BaselineEntry] = field(default_factory=list)
    config_mismatches: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.config_mismatches and all(
            entry.passed for entry in self.entries
        )


def empty_baselines() -> Dict[str, Any]:
    return {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "default_tolerance": DEFAULT_TOLERANCE,
        "workloads": {},
    }


def load_baselines(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        baselines = json.load(handle)
    if baselines.get("schema_version") != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported baselines schema "
            f"{baselines.get('schema_version')!r} in {path}"
        )
    return baselines


def save_baselines(baselines: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(baselines, handle, indent=2, sort_keys=True)
        handle.write("\n")


class BaselineRaiseError(ValueError):
    """A baseline update would *loosen* the committed ratchet.

    The perf gate only stays honest if baselines move monotonically in the
    better direction (p50 down, throughput up).  An update that would raise
    a p50 or lower the throughput floor fails loudly; regressions must be
    adopted deliberately (``--allow-baseline-raise``), e.g. when moving the
    baseline machine, never silently folded in by a routine refresh.
    """


def _find_raises(
    artifact: Dict[str, Any], base: Dict[str, Any]
) -> List[str]:
    """Human-readable list of metrics the update would make *worse*."""
    raises: List[str] = []
    new_p50s = {
        series: snap["p50"]
        for series, snap in artifact.get("latency_ns", {}).items()
        if snap.get("p50") is not None
    }
    for series, old_p50 in sorted(base.get("p50_ns", {}).items()):
        new_p50 = new_p50s.get(series)
        if new_p50 is not None and new_p50 > old_p50:
            raises.append(
                f"p50[{series}]: {old_p50:,.0f} -> {new_p50:,.0f} ns"
            )
    old_tp = base.get("throughput_ops_per_sec")
    new_tp = artifact.get("throughput_ops_per_sec")
    if old_tp is not None and new_tp is not None and new_tp < old_tp:
        raises.append(
            f"throughput_ops_per_sec: {old_tp:,.1f} -> {new_tp:,.1f}"
        )
    return raises


def update_baselines(
    artifact: Dict[str, Any],
    baselines: Dict[str, Any],
    allow_raise: bool = False,
) -> Dict[str, Any]:
    """Fold one bench artifact into the baselines document (in place).

    Raises :class:`BaselineRaiseError` when the update would loosen an
    existing entry (higher p50 or lower throughput) unless ``allow_raise``
    is set.  New workloads and improvements always fold in silently.
    """
    existing = baselines.get("workloads", {}).get(artifact["workload"])
    if existing is not None and not allow_raise:
        raises = _find_raises(artifact, existing)
        if raises:
            detail = "; ".join(raises)
            raise BaselineRaiseError(
                f"refusing to raise baseline for workload "
                f"{artifact['workload']!r}: {detail} (pass "
                "--allow-baseline-raise to adopt a regression deliberately)"
            )
    p50s = {
        series: snap["p50"]
        for series, snap in artifact["latency_ns"].items()
        if snap.get("p50") is not None
    }
    baselines.setdefault("workloads", {})[artifact["workload"]] = {
        "ops": artifact["ops"],
        "value_size": artifact["value_size"],
        "seed": artifact["seed"],
        "target": artifact["target"],
        "op_sequence_sha256": artifact["op_sequence_sha256"],
        "p50_ns": p50s,
        "throughput_ops_per_sec": artifact["throughput_ops_per_sec"],
    }
    return baselines


def compare_to_baseline(
    artifact: Dict[str, Any],
    baselines: Dict[str, Any],
    tolerance: Optional[float] = None,
) -> BaselineReport:
    """Gate one artifact against the committed baselines.

    Fails when a latency series' measured p50 exceeds baseline*(1+band),
    when throughput drops below baseline/(1+band), when the run's
    parameters differ from the baselined ones (apples-to-apples only), or
    when the workload has no baseline at all.
    """
    workload = artifact["workload"]
    report = BaselineReport(workload=workload)
    base = baselines.get("workloads", {}).get(workload)
    if base is None:
        report.config_mismatches.append(
            f"no baseline for workload {workload!r} (run with "
            "--update-baseline to add one)"
        )
        return report
    band = tolerance
    if band is None:
        band = base.get("tolerance")
    if band is None:
        band = baselines.get("default_tolerance", DEFAULT_TOLERANCE)
    params = ("ops", "value_size", "seed", "target", "op_sequence_sha256")
    for param in params:
        if param == "op_sequence_sha256" and param not in base:
            continue
        if base.get(param) != artifact.get(param):
            report.config_mismatches.append(
                f"{param}: baseline {base.get(param)!r} != run "
                f"{artifact.get(param)!r}"
            )
    measured_latency = artifact.get("latency_ns", {})
    for series in sorted(base.get("p50_ns", {})):
        baseline_p50 = base["p50_ns"][series]
        measured = measured_latency.get(series, {}).get("p50")
        limit = baseline_p50 * (1.0 + band)
        report.entries.append(
            BaselineEntry(
                metric=f"p50[{series}]",
                baseline=baseline_p50,
                measured=measured,
                limit=limit,
                passed=measured is not None and measured <= limit,
                note="" if measured is not None else "series missing from run",
            )
        )
    base_throughput = base.get("throughput_ops_per_sec")
    if base_throughput:
        measured_tp = artifact.get("throughput_ops_per_sec")
        floor = base_throughput / (1.0 + band)
        report.entries.append(
            BaselineEntry(
                metric="throughput_ops_per_sec",
                baseline=base_throughput,
                measured=measured_tp,
                limit=floor,
                passed=measured_tp is not None and measured_tp >= floor,
                note="floor (higher is better)",
            )
        )
    return report


def render_report(report: BaselineReport, tolerance_note: str = "") -> str:
    lines: List[str] = []
    header = f"baseline gate: workload {report.workload}"
    if tolerance_note:
        header += f" ({tolerance_note})"
    lines.append(header)
    for mismatch in report.config_mismatches:
        lines.append(f"  CONFIG MISMATCH {mismatch}")
    lines.append(
        f"  {'metric':<28} {'baseline':>14} {'measured':>14} "
        f"{'limit':>14} verdict"
    )
    for entry in report.entries:
        measured = "-" if entry.measured is None else f"{entry.measured:,.0f}"
        verdict = "ok" if entry.passed else "REGRESSION"
        note = f"  ({entry.note})" if entry.note else ""
        lines.append(
            f"  {entry.metric:<28} {entry.baseline:>14,.0f} {measured:>14} "
            f"{entry.limit:>14,.0f} {verdict}{note}"
        )
    lines.append(f"  gate: {'PASS' if report.passed else 'FAIL'}")
    return "\n".join(lines)
