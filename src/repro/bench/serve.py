"""``repro metrics-serve``: a live demo node behind ``/metrics``.

Runs a :class:`~repro.shardstore.rpc.StorageNode` with a
:class:`~repro.shardstore.observability.timing.TimingRecorder`, applies a
deterministic warmup workload, and serves:

* ``/metrics``  -- Prometheus text format over the node's metric registry,
  wall-clock latency histograms, and the RPC layer's ``NodeStats`` totals.
  The demo node runs with the deadline-aware admission plane enabled, so
  per-disk queue gauges (``queue_backlog_units``, ``queue_depth``,
  ``latency_ewma``, ``inflight``) and the shed/hedge counters are live.
  Each scrape also applies a small slice of fresh mixed traffic so the
  counters move like a node under load.
* ``/healthz``  -- JSON liveness: disk service states, shard count, and
  the per-disk admission-queue view (``queues`` + a rolled-up
  ``queue_state`` of ``ok``/``degraded``).

Stdlib ``http.server`` only.  Single-threaded by design: request handling
and workload application never interleave.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Optional, Tuple

from repro.evidence import TraceChecker
from repro.shardstore import StorageNode
from repro.shardstore.observability import (
    Journal,
    TimingRecorder,
    render_prometheus,
)
from repro.shardstore.resilience import AdmissionConfig, BreakerState

from .harness import _Target, execute_op
from .workloads import generate_ops

__all__ = ["MetricsDemoNode", "make_server", "serve"]

#: Ops generated per traffic epoch; the cursor wraps to a fresh epoch
#: (seed+epoch) when exhausted, so the node never runs out of traffic.
_EPOCH_OPS = 4096


class MetricsDemoNode:
    """The live node plus its rolling traffic generator."""

    def __init__(
        self,
        *,
        seed: int = 0,
        num_disks: int = 3,
        value_size: int = 64,
        warmup_ops: int = 400,
        ops_per_scrape: int = 25,
        admission: Optional[AdmissionConfig] = None,
        journal_path: Optional[str] = None,
    ) -> None:
        self.seed = seed
        self.value_size = value_size
        self.ops_per_scrape = ops_per_scrape
        self.recorder = TimingRecorder()
        # The evidence plane runs live: every op lands in the journal
        # (in-memory unless a path is given) and is replayed against the
        # reference model by an incremental trace checker, whose verdict
        # is exported on /metrics and /healthz.
        self.journal = Journal(
            journal_path, meta={"source": "metrics-serve", "seed": seed}
        )
        self.journal.attach_recorder(self.recorder)
        self.checker = TraceChecker()
        self._fed = 0
        # The demo node runs the deadline-aware request plane by default:
        # healthy demo traffic never sheds, but the queue gauges, hedge
        # counters, and retry-budget token gauge are live on /metrics.
        self.admission = admission if admission is not None else AdmissionConfig()
        self._target = _Target(
            "node", "mixed", seed, num_disks, self.recorder,
            admission=self.admission, journal=self.journal,
        )
        self._epoch = 0
        self._sequence = generate_ops("mixed", _EPOCH_OPS, value_size, seed)
        self._cursor = 0
        self.apply_traffic(warmup_ops)
        # Write back the warmup so disk/scheduler counters are live from
        # the first scrape.
        self._target.settle()

    @property
    def node(self) -> StorageNode:
        return self._target.node  # type: ignore[return-value]

    def apply_traffic(self, ops: int) -> None:
        for _ in range(max(0, ops)):
            if self._cursor >= len(self._sequence):
                self._epoch += 1
                self._sequence = generate_ops(
                    "mixed", _EPOCH_OPS, self.value_size,
                    self.seed + self._epoch,
                )
                self._cursor = 0
            execute_op(
                self._target, self._sequence[self._cursor], self.value_size
            )
            self._cursor += 1

    def check_evidence(self) -> dict:
        """Feed new journal records to the live checker; running verdict."""
        while self._fed < len(self.journal.entries):
            self.checker.feed(self.journal.entries[self._fed])
            self._fed += 1
        report = self.checker.report
        return {
            "journal_records": self.journal.records_written,
            "journal_bytes": self.journal.bytes_written,
            "chain_head": self.journal.head,
            "violations": report.violation_count,
            "passed": report.passed,
        }

    def metrics_page(self) -> str:
        self.apply_traffic(self.ops_per_scrape)
        evidence = self.check_evidence()
        gauges = dict(self.node.health_snapshot()["gauges"])
        gauges["journal.records"] = evidence["journal_records"]
        gauges["journal.bytes"] = evidence["journal_bytes"]
        # The 48-bit chain-head prefix fits a float gauge exactly; two
        # scrapes with equal gauges saw the same journal prefix.
        gauges["journal.chain_head"] = int(evidence["chain_head"][:12], 16)
        gauges["evidence.violations"] = evidence["violations"]
        return render_prometheus(
            self.recorder.metrics.snapshot(),
            latency=self.recorder.latency_snapshot(),
            extra_counters=self.node.stats.snapshot(),
            extra_gauges=gauges,
        )

    def healthz(self) -> dict:
        node = self.node
        gauges = node.health_snapshot()["gauges"]
        queues = {}
        degraded_queues = 0
        for disk_id in range(node.num_disks):
            prefix = f"node.disk{disk_id}"
            backlog = int(gauges.get(f"{prefix}.queue_backlog_units", 0))
            slow = node.breaker_state(disk_id) is BreakerState.SLOW
            # A queue is degraded when its backlog crosses half the shed
            # bound (the next storm wave would shed) or its disk has been
            # demoted SLOW by the brownout detector.
            degraded = slow or (
                backlog >= self.admission.max_backlog_units // 2
            )
            degraded_queues += degraded
            queues[str(disk_id)] = {
                "backlog_units": backlog,
                "depth": int(gauges.get(f"{prefix}.queue_depth", 0)),
                "state": "degraded" if degraded else "ok",
            }
        return {
            "status": "ok",
            "disks": {
                str(disk_id): (
                    "removed"
                    if not node.in_service(disk_id)
                    else "degraded"
                    if node.degraded(disk_id)
                    else "in-service"
                )
                for disk_id in range(node.num_disks)
            },
            "queues": queues,
            "queue_state": "degraded" if degraded_queues else "ok",
            "shards": len(node.keys()),
            "evidence": self.check_evidence(),
        }


class _MetricsHandler(BaseHTTPRequestHandler):
    server_version = "repro-metrics/1.0"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        demo: MetricsDemoNode = self.server.demo_node  # type: ignore[attr-defined]
        if self.path in ("/metrics", "/metrics/"):
            body = demo.metrics_page().encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif self.path in ("/healthz", "/healthz/"):
            body = (json.dumps(demo.healthz()) + "\n").encode("utf-8")
            content_type = "application/json"
        else:
            self.send_error(404, "try /metrics or /healthz")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    demo: Optional[MetricsDemoNode] = None,
    **demo_kwargs,
) -> Tuple[HTTPServer, MetricsDemoNode]:
    """Build (but do not start) the HTTP server; port 0 picks a free port."""
    demo = demo or MetricsDemoNode(**demo_kwargs)
    server = HTTPServer((host, port), _MetricsHandler)
    server.demo_node = demo  # type: ignore[attr-defined]
    return server, demo


def serve(
    host: str = "127.0.0.1",
    port: int = 9464,
    *,
    log=print,
    **demo_kwargs,
) -> int:  # pragma: no cover - blocking CLI loop; tested via make_server
    server, _ = make_server(host, port, **demo_kwargs)
    server.verbose = True  # type: ignore[attr-defined]
    bound_host, bound_port = server.server_address[:2]
    log(
        f"serving Prometheus metrics on http://{bound_host}:{bound_port}"
        "/metrics (healthz on /healthz); Ctrl-C to stop"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        log("shutting down")
    finally:
        server.server_close()
    return 0
