"""``repro metrics-serve``: a live demo node behind ``/metrics``.

Runs a :class:`~repro.shardstore.rpc.StorageNode` with a
:class:`~repro.shardstore.observability.timing.TimingRecorder`, applies a
deterministic warmup workload, and serves:

* ``/metrics``  -- Prometheus text format over the node's metric registry,
  wall-clock latency histograms, and the RPC layer's ``NodeStats`` totals.
  The demo node runs with the deadline-aware admission plane enabled, so
  per-disk queue gauges (``queue_backlog_units``, ``queue_depth``,
  ``latency_ewma``, ``inflight``) and the shed/hedge counters are live.
  Each scrape also applies a small slice of fresh mixed traffic so the
  counters move like a node under load.
* ``/healthz``  -- JSON liveness: disk service states, shard count, and
  the per-disk admission-queue view (``queues`` + a rolled-up
  ``queue_state`` of ``ok``/``degraded``).

``--cluster N`` swaps the single node for a :class:`ClusterMetricsDemo`:
a quorum :class:`~repro.cluster.router.ClusterRouter` over N storage
nodes, with breaker/queue/shed/hedge series broken out per member via
the ``{node="nodeK"}`` label, a deterministic partition storm every few
scrapes so the per-node series visibly diverge, and a ``/healthz``
cluster roll-up that reports ``degraded`` whenever any member is
unreachable or the reachable count drops below the replication factor.

Stdlib ``http.server`` only.  Single-threaded by design: request handling
and workload application never interleave.  SIGTERM/SIGINT unwind through
:class:`~repro.shardstore.observability.journal.seal_on_signal`, so a
supervisor stop still seals every evidence journal.
"""

from __future__ import annotations

import json
import random
import re
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import (
    DegradedReadError,
    DegradedWriteError,
    KeyNotFoundError,
)
from repro.evidence import TraceChecker, check_cluster_journals
from repro.cluster import ClusterConfig, ClusterRouter
from repro.shardstore import StorageNode
from repro.shardstore.observability import (
    Journal,
    TimingRecorder,
    render_prometheus,
    seal_on_signal,
)
from repro.shardstore.resilience import AdmissionConfig, BreakerState

from .harness import _Target, execute_op
from .workloads import generate_ops, value_for

__all__ = [
    "ClusterMetricsDemo",
    "MetricsDemoNode",
    "make_server",
    "serve",
]

#: Ops generated per traffic epoch; the cursor wraps to a fresh epoch
#: (seed+epoch) when exhausted, so the node never runs out of traffic.
_EPOCH_OPS = 4096


class MetricsDemoNode:
    """The live node plus its rolling traffic generator."""

    def __init__(
        self,
        *,
        seed: int = 0,
        num_disks: int = 3,
        value_size: int = 64,
        warmup_ops: int = 400,
        ops_per_scrape: int = 25,
        admission: Optional[AdmissionConfig] = None,
        journal_path: Optional[str] = None,
    ) -> None:
        self.seed = seed
        self.value_size = value_size
        self.ops_per_scrape = ops_per_scrape
        self.recorder = TimingRecorder()
        # The evidence plane runs live: every op lands in the journal
        # (in-memory unless a path is given) and is replayed against the
        # reference model by an incremental trace checker, whose verdict
        # is exported on /metrics and /healthz.
        self.journal = Journal(
            journal_path, meta={"source": "metrics-serve", "seed": seed}
        )
        self.journal.attach_recorder(self.recorder)
        self.checker = TraceChecker()
        self._fed = 0
        # The demo node runs the deadline-aware request plane by default:
        # healthy demo traffic never sheds, but the queue gauges, hedge
        # counters, and retry-budget token gauge are live on /metrics.
        self.admission = admission if admission is not None else AdmissionConfig()
        self._target = _Target(
            "node", "mixed", seed, num_disks, self.recorder,
            admission=self.admission, journal=self.journal,
        )
        self._epoch = 0
        self._sequence = generate_ops("mixed", _EPOCH_OPS, value_size, seed)
        self._cursor = 0
        self.apply_traffic(warmup_ops)
        # Write back the warmup so disk/scheduler counters are live from
        # the first scrape.
        self._target.settle()

    @property
    def node(self) -> StorageNode:
        return self._target.node  # type: ignore[return-value]

    def apply_traffic(self, ops: int) -> None:
        for _ in range(max(0, ops)):
            if self._cursor >= len(self._sequence):
                self._epoch += 1
                self._sequence = generate_ops(
                    "mixed", _EPOCH_OPS, self.value_size,
                    self.seed + self._epoch,
                )
                self._cursor = 0
            execute_op(
                self._target, self._sequence[self._cursor], self.value_size
            )
            self._cursor += 1

    def check_evidence(self) -> dict:
        """Feed new journal records to the live checker; running verdict."""
        while self._fed < len(self.journal.entries):
            self.checker.feed(self.journal.entries[self._fed])
            self._fed += 1
        report = self.checker.report
        return {
            "journal_records": self.journal.records_written,
            "journal_bytes": self.journal.bytes_written,
            "chain_head": self.journal.head,
            "violations": report.violation_count,
            "passed": report.passed,
        }

    def metrics_page(self) -> str:
        self.apply_traffic(self.ops_per_scrape)
        evidence = self.check_evidence()
        gauges = dict(self.node.health_snapshot()["gauges"])
        gauges["journal.records"] = evidence["journal_records"]
        gauges["journal.bytes"] = evidence["journal_bytes"]
        # The 48-bit chain-head prefix fits a float gauge exactly; two
        # scrapes with equal gauges saw the same journal prefix.
        gauges["journal.chain_head"] = int(evidence["chain_head"][:12], 16)
        gauges["evidence.violations"] = evidence["violations"]
        return render_prometheus(
            self.recorder.metrics.snapshot(),
            latency=self.recorder.latency_snapshot(),
            extra_counters=self.node.stats.snapshot(),
            extra_gauges=gauges,
        )

    def healthz(self) -> dict:
        node = self.node
        gauges = node.health_snapshot()["gauges"]
        queues = {}
        degraded_queues = 0
        for disk_id in range(node.num_disks):
            prefix = f"node.disk{disk_id}"
            backlog = int(gauges.get(f"{prefix}.queue_backlog_units", 0))
            slow = node.breaker_state(disk_id) is BreakerState.SLOW
            # A queue is degraded when its backlog crosses half the shed
            # bound (the next storm wave would shed) or its disk has been
            # demoted SLOW by the brownout detector.
            degraded = slow or (
                backlog >= self.admission.max_backlog_units // 2
            )
            degraded_queues += degraded
            queues[str(disk_id)] = {
                "backlog_units": backlog,
                "depth": int(gauges.get(f"{prefix}.queue_depth", 0)),
                "state": "degraded" if degraded else "ok",
            }
        return {
            "status": "ok",
            "disks": {
                str(disk_id): (
                    "removed"
                    if not node.in_service(disk_id)
                    else "degraded"
                    if node.degraded(disk_id)
                    else "in-service"
                )
                for disk_id in range(node.num_disks)
            },
            "queues": queues,
            "queue_state": "degraded" if degraded_queues else "ok",
            "shards": len(node.keys()),
            "evidence": self.check_evidence(),
        }


#: Per-disk gauge names rolled up per node by taking the worst value
#: (anything else -- backlog, depth, inflight -- sums across disks).
_MAX_GAUGES = ("breaker_state", "error_rate", "degraded")

_DISK_GAUGE = re.compile(r"^node\.disk\d+\.(.+)$")


class ClusterMetricsDemo:
    """A live quorum cluster behind ``/metrics`` and ``/healthz``.

    Drives a :class:`ClusterRouter` (admission plane on) with rolling
    mixed traffic.  Every ``storm_every``-th scrape partitions one
    member for the duration of the next traffic slice -- hints queue,
    degraded writes fire, and the per-node labeled series drift apart;
    the partition heals (replaying hints) at the start of the following
    scrape, so ``/healthz`` shows the cluster roll-up flip between
    ``ok`` and ``degraded`` as you watch.

    Evidence runs live too: one journal per member plus the router's,
    re-checked by the merged multi-journal replay on every scrape.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        cluster_nodes: int = 5,
        value_size: int = 64,
        warmup_ops: int = 300,
        ops_per_scrape: int = 25,
        storm_every: int = 4,
        journal_path: Optional[str] = None,
    ) -> None:
        self.seed = seed
        self.value_size = value_size
        self.ops_per_scrape = ops_per_scrape
        self.storm_every = storm_every
        self.journals: List[Journal] = []

        def factory(identity: str, meta: Dict[str, Any]) -> Journal:
            # The router journal (the op-ordering spine) goes to disk when
            # a path is given; member journals stay in memory.
            path = journal_path if identity == "router" else None
            journal = Journal(
                path,
                meta=dict(meta, source="metrics-serve", seed=seed),
                node=identity,
            )
            self.journals.append(journal)
            return journal

        self.router = ClusterRouter(
            ClusterConfig(
                num_nodes=cluster_nodes,
                seed=seed,
                admission=AdmissionConfig(),
                # Merkle anti-entropy on: the per-node ``repro_merkle_root``
                # gauges drift apart during a partition storm and snap back
                # together as op-clocked sync rounds repair the lag.
                anti_entropy=True,
            ),
            journal_factory=factory,
        )
        self.rng = random.Random(seed ^ 0x5EED)
        self._scrapes = 0
        self._partitioned: Optional[int] = None
        self.apply_traffic(warmup_ops)

    @property
    def journal(self) -> Journal:
        """The router journal (the one ``--journal`` writes to disk)."""
        return self.router.journal  # type: ignore[return-value]

    def apply_traffic(self, ops: int) -> None:
        for index in range(max(0, ops)):
            key = b"cd-%03d" % self.rng.randrange(64)
            roll = self.rng.random()
            try:
                if roll < 0.55:
                    self.router.put(key, value_for(key, self.value_size))
                elif roll < 0.85:
                    self.router.get(key)
                elif roll < 0.95:
                    self.router.delete(key)
                else:
                    self.router.contains(key)
            except (DegradedWriteError, DegradedReadError, KeyNotFoundError):
                # Typed degradation is a legitimate outcome mid-partition;
                # the router's counters already recorded it.
                pass

    def _advance_storm(self) -> None:
        """Heal last scrape's partition; maybe start the next one."""
        if self._partitioned is not None:
            self.router.heal_partition(self._partitioned)
            self._partitioned = None
        self._scrapes += 1
        if self.storm_every and self._scrapes % self.storm_every == 0:
            victims = [
                nid
                for nid, cn in sorted(self.router.nodes.items())
                if cn.reachable
            ]
            if len(victims) > self.router.config.write_quorum:
                self._partitioned = victims[
                    self.rng.randrange(len(victims))
                ]
                self.router.partition_node(self._partitioned)

    def check_evidence(self) -> dict:
        """Merged-journal replay over every live (unsealed) journal."""
        report = check_cluster_journals(
            [journal.entries for journal in self.journals]
        )
        return {
            "journals": len(self.journals),
            "records": report.records,
            "checked": report.checked,
            "corroborated": report.corroborated,
            "violations": report.violation_count,
            "passed": report.passed,
        }

    def _labeled_series(
        self,
    ) -> Tuple[Dict[str, Dict[str, int]], Dict[str, Dict[str, float]]]:
        counters: Dict[str, Dict[str, int]] = {}
        gauges: Dict[str, Dict[str, float]] = {}
        for node_id, cn in sorted(self.router.nodes.items()):
            if cn.removed:
                continue
            label = f"node{node_id}"
            for name, value in cn.node.stats.snapshot().items():
                counters.setdefault(f"cluster.{name}", {})[label] = value
            rollup: Dict[str, List[float]] = {}
            for name, value in cn.node.health_snapshot()["gauges"].items():
                match = _DISK_GAUGE.match(name)
                if match:
                    rollup.setdefault(match.group(1), []).append(value)
            for suffix, values in rollup.items():
                agg = max(values) if suffix in _MAX_GAUGES else sum(values)
                gauges.setdefault(f"cluster.node.{suffix}", {})[label] = agg
            gauges.setdefault("cluster.node.reachable", {})[label] = float(
                cn.reachable
            )
            gauges.setdefault("cluster.node.hints_pending", {})[label] = (
                self.router.hints_pending(node_id)
            )
            for name, value in self.router.hint_stats.get(
                node_id, {}
            ).items():
                counters.setdefault(f"cluster.node.hints_{name}", {})[
                    label
                ] = value
        for node_id, root in self.router.antientropy.numeric_roots().items():
            gauges.setdefault("merkle.root", {})[f"node{node_id}"] = float(
                root
            )
        return counters, gauges

    def metrics_page(self) -> str:
        self._advance_storm()
        self.apply_traffic(self.ops_per_scrape)
        counters, gauges = self._labeled_series()
        evidence = self.check_evidence()
        quorum = self.router.quorum_health()
        extra_gauges: Dict[str, float] = {
            "cluster.nodes": quorum["nodes"],
            "cluster.reachable": quorum["reachable"],
            "cluster.replication": quorum["replication"],
            "cluster.quorum_ok": float(quorum["quorum_ok"]),
            "cluster.degraded": float(quorum["degraded"]),
            "journal.records": sum(
                journal.records_written for journal in self.journals
            ),
            "evidence.violations": evidence["violations"],
        }
        return render_prometheus(
            None,
            extra_counters={
                f"cluster.{name}": value
                for name, value in self.router.stats.items()
            },
            extra_gauges=extra_gauges,
            labeled_counters=counters,
            labeled_gauges=gauges,
        )

    def healthz(self) -> dict:
        snapshot = self.router.health_snapshot()
        cluster = snapshot["cluster"]
        # Degraded the moment any member is partitioned/crashed/demoted
        # or the reachable count can no longer hold ``replication`` full
        # copies -- the cluster still serves quorums, but with thinner
        # margins than the placement promises.  Replica divergence counts
        # too: unequal placement-group Merkle roots mean some replica is
        # provably lagging, even if every member answers.
        divergence = self.router.antientropy.converged_snapshot()
        degraded = (
            cluster["degraded"]
            or cluster["below_replication"]
            or not divergence["converged"]
        )
        anti_entropy = dict(snapshot["anti_entropy"])
        anti_entropy.update(
            converged=divergence["converged"],
            divergent_groups=divergence["divergent"],
            placement_groups=divergence["groups"],
        )
        return {
            "status": "degraded" if degraded else "ok",
            "cluster": cluster,
            "anti_entropy": anti_entropy,
            "nodes": snapshot["nodes"],
            "evidence": self.check_evidence(),
        }


#: Either demo flavor; both expose metrics_page()/healthz()/journal.
_Demo = Union[MetricsDemoNode, ClusterMetricsDemo]


class _MetricsHandler(BaseHTTPRequestHandler):
    server_version = "repro-metrics/1.0"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        demo: _Demo = self.server.demo_node  # type: ignore[attr-defined]
        if self.path in ("/metrics", "/metrics/"):
            body = demo.metrics_page().encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif self.path in ("/healthz", "/healthz/"):
            body = (json.dumps(demo.healthz()) + "\n").encode("utf-8")
            content_type = "application/json"
        else:
            self.send_error(404, "try /metrics or /healthz")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    demo: Optional[_Demo] = None,
    cluster_nodes: int = 0,
    **demo_kwargs,
) -> Tuple[HTTPServer, _Demo]:
    """Build (but do not start) the HTTP server; port 0 picks a free port.

    ``cluster_nodes > 0`` serves a :class:`ClusterMetricsDemo` over that
    many members instead of the single-node demo.
    """
    if demo is None:
        if cluster_nodes:
            demo_kwargs.pop("num_disks", None)
            demo_kwargs.pop("admission", None)
            demo = ClusterMetricsDemo(
                cluster_nodes=cluster_nodes, **demo_kwargs
            )
        else:
            demo = MetricsDemoNode(**demo_kwargs)
    server = HTTPServer((host, port), _MetricsHandler)
    server.demo_node = demo  # type: ignore[attr-defined]
    return server, demo


def serve(
    host: str = "127.0.0.1",
    port: int = 9464,
    *,
    log=print,
    **demo_kwargs,
) -> int:  # pragma: no cover - blocking CLI loop; tested via make_server
    server, demo = make_server(host, port, **demo_kwargs)
    server.verbose = True  # type: ignore[attr-defined]
    bound_host, bound_port = server.server_address[:2]
    mode = (
        f"cluster of {len(demo.router.members)} nodes"
        if isinstance(demo, ClusterMetricsDemo)
        else "single node"
    )
    log(
        f"serving Prometheus metrics ({mode}) on "
        f"http://{bound_host}:{bound_port}/metrics "
        "(healthz on /healthz); Ctrl-C to stop"
    )
    journals = getattr(demo, "journals", None) or [demo.journal]
    # SIGTERM from a supervisor (or Ctrl-C) unwinds through here, so the
    # evidence journal(s) are sealed -- chain-verifiable with
    # ``--require-seal`` -- even on an interrupted serve.
    with seal_on_signal(*journals):
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            log("shutting down (sealing journals)")
        finally:
            server.server_close()
    return 0
