"""Deterministic benchmark workloads over the KVNode protocol.

Each workload is a pure function of ``(ops, value_size, seed)``: the op
sequence is generated up front from one ``random.Random(seed)``, so two
runs with the same parameters execute *identical* operations (the artifact
records a SHA-256 digest of the sequence to make that checkable), while
wall-clock timings naturally differ run to run.

Workloads (mirroring the paper's operation mix plus the background ops the
validation alphabets cover):

* ``put-heavy``    -- ingest: mostly puts over a growing keyspace.
* ``get-heavy``    -- read-mostly serving traffic.
* ``mixed``        -- balanced request plane plus background flushes.
* ``reclaim-churn``-- overwrite/delete churn on a small store, forcing
  chunk reclamation (GC) onto the critical path.
* ``crash-recover``-- request traffic punctuated by clean and dirty
  reboots, measuring recovery cost (single-disk store target only).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

WORKLOADS = (
    "put-heavy",
    "get-heavy",
    "mixed",
    "reclaim-churn",
    "crash-recover",
)

#: (put, get, delete, contains, keys) weights per workload; flush/drain and
#: reboots are injected on deterministic op-count cadences instead.
_MIX: Dict[str, Tuple[float, float, float, float, float]] = {
    "put-heavy": (0.80, 0.10, 0.05, 0.05, 0.00),
    "get-heavy": (0.12, 0.78, 0.04, 0.04, 0.02),
    "mixed": (0.40, 0.40, 0.10, 0.07, 0.03),
    "reclaim-churn": (0.48, 0.12, 0.38, 0.02, 0.00),
    "crash-recover": (0.45, 0.35, 0.10, 0.08, 0.02),
}

#: Background-op cadence (every N request ops) per workload.
_FLUSH_EVERY = {
    "put-heavy": 128,
    "get-heavy": 256,
    "mixed": 64,
    "reclaim-churn": 24,
    "crash-recover": 64,
}
_DRAIN_EVERY = {"reclaim-churn": 192}
_CLEAN_REBOOT_EVERY = {"crash-recover": 311}
_DIRTY_REBOOT_EVERY = {"crash-recover": 157}


@dataclass(frozen=True)
class BenchOp:
    """One benchmark operation (value bytes are derived, not stored)."""

    op: str  # put|get|delete|contains|keys|flush|drain|reboot-clean|reboot-dirty
    key: bytes = b""

    def encode(self) -> bytes:
        return b"%s %s" % (self.op.encode("ascii"), self.key.hex().encode())


def keyspace_size(workload: str, ops: int) -> int:
    """Bounded keyspace so gets hit and churn workloads overwrite."""
    if workload == "reclaim-churn":
        return max(8, min(32, ops // 16))
    return max(16, ops // 8)


def generate_ops(
    workload: str, ops: int, value_size: int, seed: int
) -> List[BenchOp]:
    """The deterministic op sequence for one benchmark run."""
    if workload not in WORKLOADS:
        raise ValueError(
            f"unknown workload {workload!r}; one of: {', '.join(WORKLOADS)}"
        )
    if ops < 1:
        raise ValueError("ops must be >= 1")
    rng = random.Random(seed)
    space = keyspace_size(workload, ops)
    put_w, get_w, delete_w, contains_w, keys_w = _MIX[workload]
    population = ("put", "get", "delete", "contains", "keys")
    weights = (put_w, get_w, delete_w, contains_w, keys_w)
    sequence: List[BenchOp] = []
    flush_every = _FLUSH_EVERY.get(workload, 0)
    drain_every = _DRAIN_EVERY.get(workload, 0)
    clean_every = _CLEAN_REBOOT_EVERY.get(workload, 0)
    dirty_every = _DIRTY_REBOOT_EVERY.get(workload, 0)
    for index in range(1, ops + 1):
        (op,) = rng.choices(population, weights=weights)
        if op == "keys":
            sequence.append(BenchOp("keys"))
        else:
            key = b"bench-%06d" % rng.randrange(space)
            sequence.append(BenchOp(op, key))
        if flush_every and index % flush_every == 0:
            sequence.append(BenchOp("flush"))
        if drain_every and index % drain_every == 0:
            sequence.append(BenchOp("drain"))
        if dirty_every and index % dirty_every == 0:
            sequence.append(BenchOp("reboot-dirty"))
        if clean_every and index % clean_every == 0:
            sequence.append(BenchOp("reboot-clean"))
    return sequence


def value_for(key: bytes, value_size: int) -> bytes:
    """The deterministic value a workload writes under ``key``."""
    if value_size <= 0:
        return b""
    unit = key + b"/"
    return (unit * (value_size // len(unit) + 1))[:value_size]


def sequence_digest(sequence: List[BenchOp]) -> str:
    """SHA-256 over the encoded op sequence; equal seeds => equal digests."""
    digest = hashlib.sha256()
    for op in sequence:
        digest.update(op.encode())
        digest.update(b"\n")
    return digest.hexdigest()
