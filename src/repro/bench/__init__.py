"""Performance telemetry: benchmark harness, baselines, metrics endpoint.

The ROADMAP's "as fast as the hardware allows" needs measurement first.
This package drives ShardStore/StorageNode through the KVNode protocol
under deterministic workloads (``repro bench``), renders schema-versioned
``BENCH_*.json`` artifacts with per-op latency percentiles and
per-component span breakdowns, gates CI on committed baselines
(``benchmarks/baselines.json``), and serves live Prometheus metrics
(``repro metrics-serve``).  Wall-clock data never enters campaign
artifacts; the PR 1 determinism contract is untouched.
"""

from .baseline import (
    BASELINE_SCHEMA_VERSION,
    DEFAULT_TOLERANCE,
    BaselineEntry,
    BaselineRaiseError,
    BaselineReport,
    compare_to_baseline,
    empty_baselines,
    load_baselines,
    render_report,
    save_baselines,
    update_baselines,
)
from .harness import (
    BENCH_SCHEMA_VERSION,
    WORKLOADS,
    bench_store_config,
    default_output_name,
    default_target,
    run_bench,
)
from .serve import MetricsDemoNode, make_server, serve
from .workloads import BenchOp, generate_ops, sequence_digest, value_for

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_TOLERANCE",
    "WORKLOADS",
    "BaselineEntry",
    "BaselineRaiseError",
    "BaselineReport",
    "BenchOp",
    "MetricsDemoNode",
    "bench_store_config",
    "compare_to_baseline",
    "default_output_name",
    "default_target",
    "empty_baselines",
    "generate_ops",
    "load_baselines",
    "make_server",
    "render_report",
    "run_bench",
    "save_baselines",
    "sequence_digest",
    "serve",
    "update_baselines",
    "value_for",
]
