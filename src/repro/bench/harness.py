"""The workload-driven benchmark harness behind ``repro bench``.

Drives a ShardStore (single disk) or StorageNode (multi-disk RPC layer)
through the unified KVNode protocol with a
:class:`~repro.shardstore.observability.timing.TimingRecorder` attached,
measuring per-op wall-clock latency plus the per-component span breakdown
(op dispatch vs scheduler pump vs disk IO vs LSM vs cache), and renders a
schema-versioned JSON artifact (``BENCH_<workload>_<date>.json`` by
convention; schema documented in EXPERIMENTS.md).

Determinism contract: the *op sequence* is a pure function of
``(workload, ops, value_size, seed)`` -- the artifact's
``op_sequence_sha256`` is reproducible -- while every ``*_ns``/``*_seconds``
field is measured wall time and varies run to run.  Nothing here is used by
``repro campaign``, whose artifacts remain wall-clock-free.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.shardstore import (
    DeadlineExceededError,
    DiskGeometry,
    KeyNotFoundError,
    NotFoundError,
    OverloadedError,
    StorageNode,
    StoreConfig,
    StoreSystem,
)
from repro.shardstore.resilience import AdmissionConfig
from repro.shardstore.observability import (
    Journal,
    TimingRecorder,
    component_of_latency,
    merge_histogram_snapshots,
    percentiles_from_snapshot,
    seal_on_signal,
)

from .workloads import (
    WORKLOADS,
    BenchOp,
    generate_ops,
    sequence_digest,
    value_for,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "MUTANTS",
    "WORKLOADS",
    "bench_store_config",
    "default_target",
    "execute_op",
    "pick_mutant_victim",
    "run_bench",
]

BENCH_SCHEMA_VERSION = 1

#: Seeded implementation mutants for the evidence plane's negative
#: control: the run *executes* the bug but *journals* the honest-looking
#: outcome, so only trace-conformance checking can catch it.
MUTANTS = ("drop-delete",)

#: Workloads that exercise per-store machinery (reclamation, recovery) and
#: therefore run against a single-disk StoreSystem by default.
_STORE_TARGET_WORKLOADS = ("reclaim-churn", "crash-recover")


def default_target(workload: str) -> str:
    return "store" if workload in _STORE_TARGET_WORKLOADS else "node"


def bench_store_config(
    workload: str, seed: int, recorder, journal: Optional[Journal] = None
) -> StoreConfig:
    """A store geometry sized for the workload.

    Request-plane workloads get a roomy geometry so latency reflects the
    write path, not allocation pressure; ``reclaim-churn`` keeps the small
    seed-default geometry so reclamation genuinely lands on the hot path.
    """
    if workload == "reclaim-churn":
        # Few-but-roomy extents: enough headroom for grown LSM meta
        # records, little enough capacity that churn forces reclamation.
        return StoreConfig(
            geometry=DiskGeometry(
                num_extents=12, extent_size=16384, page_size=128
            ),
            seed=seed,
            recorder=recorder,
            journal=journal,
        )
    return StoreConfig(
        geometry=DiskGeometry(
            num_extents=48, extent_size=32768, page_size=512
        ),
        max_chunk_payload=4096,
        memtable_flush_threshold=64,
        buffer_cache_pages=256,
        seed=seed,
        recorder=recorder,
        journal=journal,
    )


class _Target:
    """The system under test: a KVNode plus its reboot capability."""

    def __init__(self, kind: str, workload: str, seed: int, num_disks: int,
                 recorder: TimingRecorder,
                 admission: Optional[AdmissionConfig] = None,
                 journal: Optional[Journal] = None) -> None:
        self.kind = kind
        config = bench_store_config(workload, seed, recorder, journal)
        if kind == "store":
            self.system: Optional[StoreSystem] = StoreSystem(config)
            self.node: Optional[StorageNode] = None
        elif kind == "node":
            self.system = None
            self.node = StorageNode(
                num_disks=num_disks, config=config, admission=admission
            )
        else:
            raise ValueError(f"unknown bench target {kind!r}")

    @property
    def kv(self):
        return self.node if self.node is not None else self.system.store

    def reboot(self, clean: bool) -> None:
        if self.system is None:
            raise ValueError(
                "reboot ops need the single-disk store target "
                "(crash-recover runs with --target store)"
            )
        if clean:
            self.system.clean_reboot()
        else:
            self.system.dirty_reboot()

    def settle(self) -> None:
        """Unmeasured post-run writeback so the store ends quiescent."""
        self.kv.flush()
        self.kv.drain()


def execute_op(target: _Target, op: BenchOp, value_size: int) -> str:
    """Run one benchmark op; returns the outcome bucket (``ok``/...)."""
    kv = target.kv
    try:
        if op.op == "put":
            kv.put(op.key, value_for(op.key, value_size))
        elif op.op == "get":
            kv.get(op.key)
        elif op.op == "delete":
            kv.delete(op.key)
        elif op.op == "contains":
            kv.contains(op.key)
        elif op.op == "keys":
            kv.keys()
        elif op.op == "flush":
            kv.flush()
        elif op.op == "drain":
            kv.drain()
        elif op.op == "reboot-clean":
            target.reboot(clean=True)
        elif op.op == "reboot-dirty":
            target.reboot(clean=False)
        else:
            raise ValueError(f"unknown bench op {op.op!r}")
    except (OverloadedError, DeadlineExceededError):
        # Admission-enabled targets shed under pressure; a shed is a
        # legitimate outcome bucket, not a harness failure.
        return "shed"
    except (NotFoundError, KeyNotFoundError):
        return "not_found"
    return "ok"


def _component_breakdown(
    latency: Dict[str, Any], wall_seconds: float
) -> Dict[str, Any]:
    """Merge per-span latency histograms into per-component digests.

    Components nest (an op span contains disk sections), so shares can sum
    past 1.0; each share is that component's busy fraction of the run.
    """
    groups: Dict[str, List[Dict[str, Any]]] = {}
    for name, snap in latency.items():
        groups.setdefault(component_of_latency(name), []).append(snap)
    wall_ns = max(wall_seconds * 1e9, 1.0)
    out: Dict[str, Any] = {}
    for component in sorted(groups):
        merged = merge_histogram_snapshots(groups[component])
        merged.update(percentiles_from_snapshot(merged))
        merged["share_of_wall"] = round(merged["total"] / wall_ns, 4)
        merged["spans"] = sorted(
            name for name in latency
            if component_of_latency(name) == component
        )
        out[component] = merged
    return out


def pick_mutant_victim(sequence: List[BenchOp]) -> Optional[int]:
    """The op index where ``drop-delete`` strikes.

    Picks the first delete whose key is (per a presence simulation of the
    deterministic op sequence) present at that point *and* is read again
    later with no intervening same-key write -- so an honest later ``get``
    is guaranteed to expose the dropped delete to the trace checker.
    Reboot-bearing workloads can legitimately lose unflushed writes, which
    would let the mutant hide behind crash uncertainty; use a reboot-free
    workload (e.g. ``mixed``) for the negative control.
    """
    present = set()
    for index, op in enumerate(sequence):
        if op.op == "put":
            present.add(op.key)
        elif op.op == "delete":
            if op.key in present:
                for later in sequence[index + 1:]:
                    if later.key != op.key:
                        continue
                    if later.op == "get":
                        return index
                    if later.op in ("put", "delete"):
                        break
            present.discard(op.key)
    return None


def run_bench(
    workload: str,
    *,
    ops: int = 2000,
    value_size: int = 64,
    seed: int = 0,
    target: Optional[str] = None,
    num_disks: int = 3,
    slowdown_ns: int = 0,
    journal_path: Optional[str] = None,
    mutant: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one benchmark and return the artifact dict.

    ``slowdown_ns`` busy-waits that long inside every measured op -- a
    synthetic regression used to prove the CI baseline gate actually fails
    (see EXPERIMENTS.md).  ``journal_path`` streams every op into a chained
    JSONL evidence journal (deterministic bytes for a given spec).
    ``mutant`` seeds an implementation bug -- the journal still reports the
    honest-looking outcome, so ``repro check-trace`` MUST flag the run.
    """
    if mutant is not None and mutant not in MUTANTS:
        raise ValueError(f"unknown mutant {mutant!r} (have: {MUTANTS})")
    if mutant is not None and journal_path is None:
        raise ValueError("--mutant needs --journal (it only exists to be caught)")
    target_kind = target or default_target(workload)
    sequence = generate_ops(workload, ops, value_size, seed)
    recorder = TimingRecorder()
    journal: Optional[Journal] = None
    if journal_path is not None:
        journal = Journal(
            journal_path,
            meta={
                "source": "bench",
                "workload": workload,
                "target": target_kind,
                "ops": ops,
                "value_size": value_size,
                "seed": seed,
            },
        )
        journal.attach_recorder(recorder)
    system = _Target(
        target_kind, workload, seed, num_disks, recorder, journal=journal
    )
    victim = (
        pick_mutant_victim(sequence) if mutant == "drop-delete" else None
    )
    if mutant is not None and victim is None:
        raise ValueError(
            f"mutant {mutant!r} found no victim op in workload "
            f"{workload!r} (needs a delete later read back; try 'mixed')"
        )

    outcomes = {"ok": 0, "not_found": 0}
    op_counts: Dict[str, int] = {}
    started = time.perf_counter_ns()
    # SIGINT/SIGTERM mid-run still seals the journal, so an interrupted
    # bench leaves a chain-verifiable (if short) evidence file.
    with seal_on_signal(journal):
        for index, op in enumerate(sequence):
            op_counts[op.op] = op_counts.get(op.op, 0) + 1
            begin = time.perf_counter_ns()
            if index == victim:
                # The seeded bug: the delete is silently dropped, but the
                # journal records the success the client was told about.
                assert journal is not None
                journal.record_op("delete", key=op.key, out="ok")
                outcome = "ok"
            else:
                outcome = execute_op(system, op, value_size)
            if slowdown_ns:
                deadline = time.perf_counter_ns() + slowdown_ns
                while time.perf_counter_ns() < deadline:
                    pass
            recorder.observe_latency(
                f"bench.{op.op}", time.perf_counter_ns() - begin
            )
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
        wall_seconds = (time.perf_counter_ns() - started) / 1e9
        system.settle()

    latency = recorder.latency_snapshot()
    per_op = {
        name[len("bench."):]: snap
        for name, snap in latency.items()
        if name.startswith("bench.")
    }
    internal = {
        name: snap
        for name, snap in latency.items()
        if not name.startswith("bench.")
    }
    overall = merge_histogram_snapshots(per_op.values())
    overall.update(percentiles_from_snapshot(overall))

    artifact: Dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "bench",
        "workload": workload,
        "target": target_kind,
        "ops": ops,
        "value_size": value_size,
        "seed": seed,
        "op_sequence_sha256": sequence_digest(sequence),
        "op_counts": {name: op_counts[name] for name in sorted(op_counts)},
        "outcomes": outcomes,
        "wall_seconds": round(wall_seconds, 6),
        "throughput_ops_per_sec": round(
            len(sequence) / max(wall_seconds, 1e-9), 1
        ),
        "latency_ns": {"all": overall, **{k: per_op[k] for k in sorted(per_op)}},
        "components_ns": _component_breakdown(internal, wall_seconds),
    }
    if slowdown_ns:
        artifact["slowdown_ns_per_op"] = slowdown_ns
    if journal is not None:
        head = journal.close()
        artifact["journal"] = {
            "path": journal_path,
            "records": journal.records_written,
            "bytes": journal.bytes_written,
            "head": head,
        }
    if mutant is not None:
        artifact["mutant"] = {"name": mutant, "victim_op_index": victim}
    return artifact


def default_output_name(workload: str, date: str) -> str:
    """The conventional artifact filename: ``BENCH_<workload>_<date>.json``."""
    return f"BENCH_{workload.replace('-', '_')}_{date}.json"
