"""repro: a reproduction of "Using Lightweight Formal Methods to Validate a
Key-Value Storage Node in Amazon S3" (Bornholt et al., SOSP 2021).

The package has two halves, mirroring the paper:

* :mod:`repro.shardstore` -- the system under validation: a complete
  Python implementation of the ShardStore key-value storage node
  (append-only extent disk, soft-updates crash consistency via runtime
  ``Dependency`` graphs, a WiscKey-style LSM-tree index, chunk storage and
  garbage collection, a buffer cache, and a multi-disk RPC layer), plus a
  registry of the paper's 16 production-prevented bugs as injectable
  faults.

* the validation stack -- the paper's actual contribution:

  - :mod:`repro.models` -- executable reference models (the specifications),
  - :mod:`repro.core` -- property-based conformance checking, test-case
    minimization, crash-consistency checking, failure injection, coverage,
  - :mod:`repro.concurrency` -- stateless model checking (exhaustive,
    random, and PCT strategies) with linearizability and deadlock checks,
  - :mod:`repro.serialization` -- deserializer hardening and the
    panic-freedom fuzz harness.
"""

__version__ = "1.0.0"
